package fault

import (
	"fmt"
	"runtime/debug"
	"strings"

	"github.com/nevesim/neve/internal/arm"
	"github.com/nevesim/neve/internal/trace"
)

// ErrorKind classifies how a protected run died.
type ErrorKind uint8

const (
	// ErrPanic is an internal panic recovered at the platform boundary: a
	// guest-triggered model bug, an injected fault the stack could not
	// absorb, or a deliberate abort deep in the model.
	ErrPanic ErrorKind = iota
	// ErrTrapStorm is the watchdog's trap-budget abort (livelock).
	ErrTrapStorm
	// ErrStepBudget is the watchdog's step-budget abort.
	ErrStepBudget
)

func (k ErrorKind) String() string {
	switch k {
	case ErrPanic:
		return "panic"
	case ErrTrapStorm:
		return "trap-storm"
	case ErrStepBudget:
		return "step-budget"
	default:
		return fmt.Sprintf("errorkind(%d)", uint8(k))
	}
}

// SimError is the typed failure of a protected simulation run. The
// watchdog constructs one when a budget trips; the recovery boundary
// wraps every other panic in one and annotates it with where the machine
// was when it died.
type SimError struct {
	// Kind says how the run died.
	Kind ErrorKind
	// CPU and Level locate the failure: the core index and the
	// virtualization level that was running (0 = host hypervisor).
	CPU   int
	Level int
	// Cycle is the core's cycle counter at the failure — the simulator's
	// program counter equivalent.
	Cycle uint64
	// Reg names the faulting system register when the panic identifies
	// one (an UndefError from a deprivileged access), else "".
	Reg string
	// Traps and Steps are the watchdog's counters, when one was attached.
	Traps uint64
	Steps uint64
	// Msg is the one-line cause: the panic value or the budget overrun.
	Msg string
	// Recent is the trap history leading up to the failure, oldest first
	// (present when the platform enabled the trace ring).
	Recent []trace.Event
	// Stack is the trimmed Go stack of a recovered panic ("" otherwise).
	Stack string
	// InjectionLog is the fault injector's applied-fault log, when an
	// injector was attached: the perturbations that led here.
	InjectionLog []string
}

// Error renders the one-line form.
func (e *SimError) Error() string {
	return fmt.Sprintf("fault: %s on cpu%d at level %d, cycle %d: %s",
		e.Kind, e.CPU, e.Level, e.Cycle, e.Msg)
}

// Diagnostic renders the full multi-line report: the failure line, the
// budgets, the faulting register, the injected faults, the recent trap
// history (with lazy detail formatting), and the panic stack.
func (e *SimError) Diagnostic() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SimError: %s on cpu%d (level %d, cycle %d)\n", e.Kind, e.CPU, e.Level, e.Cycle)
	fmt.Fprintf(&b, "  cause: %s\n", e.Msg)
	if e.Reg != "" {
		fmt.Fprintf(&b, "  faulting register: %s\n", e.Reg)
	}
	if e.Traps != 0 || e.Steps != 0 {
		fmt.Fprintf(&b, "  observed: %d traps, %d guest steps\n", e.Traps, e.Steps)
	}
	if len(e.InjectionLog) > 0 {
		fmt.Fprintf(&b, "  injected faults (%d):\n", len(e.InjectionLog))
		for _, l := range e.InjectionLog {
			fmt.Fprintf(&b, "    %s\n", l)
		}
	}
	if len(e.Recent) > 0 {
		fmt.Fprintf(&b, "  last %d traps (oldest first):\n", len(e.Recent))
		for _, ev := range e.Recent {
			fmt.Fprintf(&b, "    L%d->L%d cycle %-12d %s\n", ev.FromLevel, ev.ToLevel, ev.Cycle, ev.Detail())
		}
	}
	if e.Stack != "" {
		b.WriteString("  stack:\n")
		for _, line := range strings.Split(e.Stack, "\n") {
			fmt.Fprintf(&b, "    %s\n", line)
		}
	}
	return b.String()
}

// Recover converts a value recovered from a panic into a *SimError.
// Watchdog aborts (already *SimError) pass through unchanged; an
// *arm.UndefError contributes its register; anything else is wrapped as
// ErrPanic with a trimmed stack. Call from a deferred function with a
// non-nil recover() result.
func Recover(v any) *SimError {
	if se, ok := v.(*SimError); ok {
		return se
	}
	se := &SimError{Kind: ErrPanic, Stack: trimStack(debug.Stack())}
	switch p := v.(type) {
	case *arm.UndefError:
		se.Msg = p.Error()
		if p.Reg != arm.RegInvalid {
			se.Reg = p.Reg.String()
		}
	case error:
		se.Msg = p.Error()
	default:
		se.Msg = fmt.Sprint(v)
	}
	return se
}

// trimStack drops the recovery machinery's own frames (debug.Stack,
// Recover, the deferred closure, panic dispatch) and caps the depth, so
// the diagnostic leads with the frame that actually panicked.
func trimStack(stack []byte) string {
	lines := strings.Split(strings.TrimRight(string(stack), "\n"), "\n")
	// lines[0] is "goroutine N [running]:"; frames are pairs of lines.
	const maxFrames = 16
	var frames []string
	skip := true
	for i := 1; i+1 < len(lines); i += 2 {
		fn := lines[i]
		if skip {
			if strings.Contains(fn, "panic(") {
				skip = false // frames below panic() are the panicking code
			}
			continue
		}
		frames = append(frames, strings.TrimSpace(fn)+"\n\t"+strings.TrimSpace(lines[i+1]))
		if len(frames) >= maxFrames {
			frames = append(frames, "...")
			break
		}
	}
	if len(frames) == 0 {
		return strings.Join(lines, "\n")
	}
	return strings.Join(frames, "\n")
}

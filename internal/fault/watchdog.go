package fault

import "fmt"

// Watchdog aborts runs that livelock: a trap storm (the same fault
// re-taken forever, the exit-multiplication pathology run away) or a
// step-budget overrun. Attach OnTrap/OnTick to the CPU hooks; when a
// budget is exceeded the watchdog panics with a *SimError, which the
// platform's recovery boundary returns — annotated with CPU state and
// recent trap history — instead of hanging the process.
//
// Budgets are cumulative across the platform's lifetime, matching how the
// experiments run one measured workload per built stack.
type Watchdog struct {
	// MaxTraps aborts after this many traps (0 = unlimited).
	MaxTraps uint64
	// MaxSteps aborts after this many Tick-charged guest instructions
	// (0 = unlimited).
	MaxSteps uint64

	traps uint64
	steps uint64
}

// Traps returns the number of traps observed.
func (w *Watchdog) Traps() uint64 { return w.traps }

// Reset zeroes the counters so the budgets apply to the next run in
// isolation. Pooled warm-boot platforms call this between sweep cells:
// without it the cumulative counts of earlier cells would eat into a
// later cell's budget and fault a healthy configuration.
func (w *Watchdog) Reset() {
	if w == nil {
		return
	}
	w.traps, w.steps = 0, 0
}

// Steps returns the number of guest instructions observed.
func (w *Watchdog) Steps() uint64 { return w.steps }

// OnTrap counts one trap and panics with a *SimError once the trap
// budget is exceeded.
func (w *Watchdog) OnTrap() {
	if w == nil {
		return
	}
	w.traps++
	if w.MaxTraps > 0 && w.traps > w.MaxTraps {
		panic(&SimError{
			Kind:  ErrTrapStorm,
			Traps: w.traps,
			Steps: w.steps,
			Msg: fmt.Sprintf("trap budget %d exceeded: the stack is trap-storming (livelock); "+
				"the recent-event history shows what keeps faulting", w.MaxTraps),
		})
	}
}

// OnTick counts n guest instructions and panics with a *SimError once
// the step budget is exceeded.
func (w *Watchdog) OnTick(n uint64) {
	if w == nil {
		return
	}
	w.steps += n
	if w.MaxSteps > 0 && w.steps > w.MaxSteps {
		panic(&SimError{
			Kind:  ErrStepBudget,
			Traps: w.traps,
			Steps: w.steps,
			Msg:   fmt.Sprintf("step budget %d exceeded: the guest is not making privileged progress", w.MaxSteps),
		})
	}
}

package fault

import (
	"errors"
	"strings"
	"testing"

	"github.com/nevesim/neve/internal/arm"
)

func TestParsePlanRoundTrip(t *testing.T) {
	cases := []string{
		"off",
		"seed=42,every=100",
		"seed=7,every=50,count=3",
		"seed=0,every=1,kinds=irq+vncr",
		"seed=1,every=10,count=2,kinds=irq+vncr+flip+device",
	}
	for _, s := range cases {
		p, err := ParsePlan(s)
		if err != nil {
			t.Fatalf("ParsePlan(%q): %v", s, err)
		}
		if got := p.String(); got != s {
			t.Errorf("ParsePlan(%q).String() = %q", s, got)
		}
		again, err := ParsePlan(p.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", p.String(), err)
		}
		if again.String() != p.String() {
			t.Errorf("round trip diverged: %q vs %q", again.String(), p.String())
		}
	}
}

func TestParsePlanRejects(t *testing.T) {
	for _, s := range []string{
		"seed=42",                   // never fires
		"every=abc",                 // bad number
		"every=-1",                  // bad number
		"bogus=1",                   // unknown key
		"every=1,kinds=gamma-ray",   // unknown kind
		"every=1,every=2",           // duplicate key
		"kinds",                     // missing value
		"seed=1,every=1,kinds=irq+", // trailing empty kind
	} {
		if _, err := ParsePlan(s); err == nil {
			t.Errorf("ParsePlan(%q) accepted", s)
		}
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(99), NewRand(99)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRand(1).Uint64() == NewRand(2).Uint64() {
		t.Fatal("different seeds collided on the first draw")
	}
	// Cheap distribution sanity: Intn covers its range.
	seen := map[int]bool{}
	r := NewRand(5)
	for i := 0; i < 200; i++ {
		seen[r.Intn(4)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("Intn(4) covered %d values", len(seen))
	}
}

func TestWatchdogTrapBudget(t *testing.T) {
	w := &Watchdog{MaxTraps: 5}
	for i := 0; i < 5; i++ {
		w.OnTrap()
	}
	defer func() {
		v := recover()
		se, ok := v.(*SimError)
		if !ok {
			t.Fatalf("recovered %T, want *SimError", v)
		}
		if se.Kind != ErrTrapStorm || se.Traps != 6 {
			t.Fatalf("SimError = %+v", se)
		}
		if !strings.Contains(se.Msg, "trap budget 5 exceeded") {
			t.Fatalf("Msg = %q", se.Msg)
		}
	}()
	w.OnTrap()
	t.Fatal("budget overrun did not abort")
}

func TestWatchdogStepBudget(t *testing.T) {
	w := &Watchdog{MaxSteps: 100}
	w.OnTick(100)
	defer func() {
		se, ok := recover().(*SimError)
		if !ok || se.Kind != ErrStepBudget {
			t.Fatalf("recovered %+v", se)
		}
	}()
	w.OnTick(1)
	t.Fatal("step overrun did not abort")
}

func TestWatchdogUnlimitedNeverFires(t *testing.T) {
	w := &Watchdog{}
	for i := 0; i < 10000; i++ {
		w.OnTrap()
		w.OnTick(1000)
	}
	if w.Traps() != 10000 {
		t.Fatalf("traps = %d", w.Traps())
	}
}

func TestRecoverPassesThroughSimError(t *testing.T) {
	in := &SimError{Kind: ErrTrapStorm, Msg: "x"}
	if out := Recover(in); out != in {
		t.Fatal("watchdog SimError was re-wrapped")
	}
}

func TestRecoverUndefError(t *testing.T) {
	u := &arm.UndefError{Reg: arm.HCR_EL2, EL: arm.EL1}
	se := Recover(u)
	if se.Kind != ErrPanic {
		t.Fatalf("kind = %v", se.Kind)
	}
	if se.Reg != arm.HCR_EL2.String() {
		t.Fatalf("Reg = %q", se.Reg)
	}
	if se.Msg != u.Error() {
		t.Fatalf("Msg = %q", se.Msg)
	}
}

func TestRecoverArbitraryPanicCarriesStack(t *testing.T) {
	var se *SimError
	func() {
		defer func() { se = Recover(recover()) }()
		deliberatePanic()
	}()
	if se.Kind != ErrPanic || se.Msg != "boom" {
		t.Fatalf("SimError = %+v", se)
	}
	if !strings.Contains(se.Stack, "deliberatePanic") {
		t.Fatalf("stack lost the panicking frame:\n%s", se.Stack)
	}
	if strings.Contains(se.Stack, "debug.Stack") {
		t.Fatalf("stack kept the recovery machinery:\n%s", se.Stack)
	}
}

func deliberatePanic() { panic("boom") }

func TestRecoverError(t *testing.T) {
	se := Recover(errors.New("disk on fire"))
	if se.Msg != "disk on fire" {
		t.Fatalf("Msg = %q", se.Msg)
	}
}

func TestDiagnosticMentionsEverything(t *testing.T) {
	se := &SimError{
		Kind: ErrTrapStorm, CPU: 1, Level: 2, Cycle: 12345,
		Reg: "VTTBR_EL2", Traps: 201, Steps: 9000,
		Msg:          "trap budget 200 exceeded",
		InjectionLog: []string{"trap 100: spurious SPI 53"},
	}
	d := se.Diagnostic()
	for _, want := range []string{
		"trap-storm", "cpu1", "level 2", "cycle 12345",
		"VTTBR_EL2", "201 traps", "9000 guest steps",
		"spurious SPI 53", "trap budget 200 exceeded",
	} {
		if !strings.Contains(d, want) {
			t.Errorf("Diagnostic missing %q:\n%s", want, d)
		}
	}
}

type nullEnv struct{ applied []Kind }

func (e *nullEnv) SpuriousIRQ(r *Rand) (string, bool) {
	e.applied = append(e.applied, SpuriousIRQ)
	return "irq", true
}
func (e *nullEnv) CorruptVNCR(r *Rand) (string, bool) { return "", false }
func (e *nullEnv) FlipGuestBit(r *Rand) (string, bool) {
	e.applied = append(e.applied, PageFlip)
	return "flip", true
}
func (e *nullEnv) DeviceNoise(r *Rand) (string, bool) { return "", false }

func TestInjectorScheduleAndFallThrough(t *testing.T) {
	env := &nullEnv{}
	in := NewInjector(Plan{Seed: 3, Every: 10, Count: 4}, env)
	for i := 0; i < 100; i++ {
		in.OnTrap()
	}
	if in.Injected() != 4 {
		t.Fatalf("injected %d, want 4 (count cap)", in.Injected())
	}
	if len(env.applied) != 4 {
		t.Fatalf("applied %v", env.applied)
	}
	// VNCR and device kinds are inapplicable in this env: the injector
	// must have fallen through to an applicable kind every time.
	for _, k := range env.applied {
		if k != SpuriousIRQ && k != PageFlip {
			t.Fatalf("inapplicable kind %v applied", k)
		}
	}
	log := in.Log()
	if len(log) != 4 || !strings.HasPrefix(log[0], "trap 10: ") {
		t.Fatalf("log = %v", log)
	}
}

func TestInjectorDeterministicReplay(t *testing.T) {
	run := func() []string {
		env := &nullEnv{}
		in := NewInjector(Plan{Seed: 42, Every: 7}, env)
		for i := 0; i < 500; i++ {
			in.OnTrap()
		}
		return in.Log()
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("log lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestInjectorInactivePlanDoesNothing(t *testing.T) {
	env := &nullEnv{}
	in := NewInjector(Plan{}, env)
	for i := 0; i < 1000; i++ {
		in.OnTrap()
	}
	if in.Injected() != 0 || len(env.applied) != 0 {
		t.Fatal("inactive plan injected")
	}
}

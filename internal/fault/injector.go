package fault

import "fmt"

// Env is the set of perturbations a platform exposes to the injector.
// Each method applies one fault drawn from rng and returns a description
// for the injection log; ok=false means the fault kind is not applicable
// to this stack (no NEVE pages to corrupt, no device window), in which
// case the injector falls through to the next kind.
//
// Implementations run inside the trap path, before the hypervisor vector:
// they must only queue interrupts, flip memory bits, or poke device
// state — never re-enter guest execution.
type Env interface {
	SpuriousIRQ(rng *Rand) (desc string, ok bool)
	CorruptVNCR(rng *Rand) (desc string, ok bool)
	FlipGuestBit(rng *Rand) (desc string, ok bool)
	DeviceNoise(rng *Rand) (desc string, ok bool)
}

// Injector applies a Plan against an Env. Attach its OnTrap to the CPU
// trap hooks; it is not safe for concurrent use (the machine model is
// single-goroutine).
type Injector struct {
	plan  Plan
	env   Env
	rng   *Rand
	kinds []Kind

	traps uint64
	done  int
	busy  bool
	log   []string
}

// NewInjector returns an injector for plan against env. An inactive plan
// yields an injector whose OnTrap does nothing.
func NewInjector(plan Plan, env Env) *Injector {
	kinds := plan.Kinds
	if len(kinds) == 0 {
		kinds = AllKinds()
	}
	return &Injector{plan: plan, env: env, rng: NewRand(plan.Seed), kinds: kinds}
}

// Plan returns the injector's schedule.
func (in *Injector) Plan() Plan { return in.plan }

// Log returns one line per applied injection ("trap 200: spurious SPI 53"),
// in order. Deterministic for a given plan and workload.
func (in *Injector) Log() []string { return in.log }

// Injected returns how many faults have been applied.
func (in *Injector) Injected() int { return in.done }

// OnTrap advances the trap counter and, on schedule, applies one fault.
// Faults applied from inside the trap path can themselves trap once the
// perturbed state is consumed; the busy guard keeps an injection from
// recursively triggering another.
func (in *Injector) OnTrap() {
	if in == nil || in.busy || !in.plan.Active() {
		return
	}
	in.traps++
	if in.traps%in.plan.Every != 0 {
		return
	}
	if in.plan.Count > 0 && in.done >= in.plan.Count {
		return
	}
	in.busy = true
	defer func() { in.busy = false }()
	// Draw a kind; if the stack can't express it (e.g. VNCR corruption
	// without NEVE), rotate through the remaining kinds so a schedule
	// slot is only lost when nothing is applicable.
	start := in.rng.Intn(len(in.kinds))
	for i := 0; i < len(in.kinds); i++ {
		k := in.kinds[(start+i)%len(in.kinds)]
		if desc, ok := in.apply(k); ok {
			in.done++
			in.log = append(in.log, fmt.Sprintf("trap %d: %s", in.traps, desc))
			return
		}
	}
}

func (in *Injector) apply(k Kind) (string, bool) {
	switch k {
	case SpuriousIRQ:
		return in.env.SpuriousIRQ(in.rng)
	case VNCRCorrupt:
		return in.env.CorruptVNCR(in.rng)
	case PageFlip:
		return in.env.FlipGuestBit(in.rng)
	case DeviceNoise:
		return in.env.DeviceNoise(in.rng)
	default:
		return "", false
	}
}

// Trace-JIT fault parity: every internal/fault perturbation kind, fired
// while super-ops are live and replaying, must leave the stack in state
// byte-identical to the fully interpreted path. The perturbations are
// applied from the workload side (the platform's own injector disables
// the JIT at the trap site, precisely because its hooks observe every
// trap), using the same deterministic draws the injector would make, so a
// jit-on and a jit-off run see the identical fault at the identical
// point. A perturbed walked word must bail the affected super-ops to the
// interpreter; a perturbation outside the guard (guest RAM) must be
// invisible to replay exactly as it is to the interpreted sequence —
// recordings that touch memory are never promoted.
package fault_test

import (
	"fmt"
	"sort"
	"testing"

	"github.com/nevesim/neve/internal/arm"
	"github.com/nevesim/neve/internal/core"
	"github.com/nevesim/neve/internal/fault"
	"github.com/nevesim/neve/internal/gic"
	"github.com/nevesim/neve/internal/kvm"
	"github.com/nevesim/neve/internal/mem"
	"github.com/nevesim/neve/internal/platform"
)

// applyFault applies one perturbation kind to the stack, mirroring the
// injector's armEnv implementations over exported state. ok=false means
// the kind is inapplicable to this stack (no NEVE pages to corrupt).
func applyFault(s *kvm.Stack, k fault.Kind, r *fault.Rand) bool {
	switch k {
	case fault.SpuriousIRQ:
		s.M.Dist.AssertSPI(gic.MinSPI + r.Intn(64))
		return true
	case fault.VNCRCorrupt:
		var owners []*kvm.VCPU
		for _, vm := range []*kvm.VM{s.VM, s.NestedVM, s.L3VM} {
			if vm == nil {
				continue
			}
			for _, v := range vm.VCPUs {
				if v.Page.Base != 0 {
					owners = append(owners, v)
				}
			}
		}
		if len(owners) == 0 {
			return false
		}
		v := owners[r.Intn(len(owners))]
		off := 8 * r.Intn(core.PageBytes()/8)
		bit := r.Intn(64)
		reg, ok := core.RegAtOffset(off)
		if !ok {
			return false
		}
		v.PageCtx.Set(reg, v.PageCtx.Get(reg)^uint64(1)<<bit)
		return true
	case fault.PageFlip:
		vm := s.VM
		addr := vm.RAMBase + mem.Addr(8*r.Intn(int(vm.RAMSize/8)))
		old := s.M.Mem.MustRead64(addr)
		s.M.Mem.MustWrite64(addr, old^uint64(1)<<r.Intn(64))
		return true
	case fault.DeviceNoise:
		var off uint64
		switch r.Intn(3) {
		case 0:
			off = gic.RegCTLR
		case 1:
			off = gic.RegISENABLER + uint64(4*r.Intn(4))
		default:
			off = gic.RegICENABLER + uint64(4*r.Intn(4))
		}
		val := r.Uint64() & 0xffff_ffff
		c := s.M.CPUs[0]
		return c.Bus != nil && c.Bus.Access(c, gic.DistBase+mem.Addr(off), true, 4, &val)
	}
	return false
}

// faultParityRun runs the parity workload on one build: warm until
// super-ops replay, fire the kind, keep running, and digest everything
// observable into one comparable string.
func faultParityRun(t *testing.T, name string, jitOff bool, k fault.Kind) (sig string, applied bool, warmHits, totalHits uint64) {
	t.Helper()
	spec := platform.MustLookup(name)
	spec.CPUs = 2
	spec.JITOff = jitOff
	p := platform.MustBuild(spec)
	var obs []uint64
	p.RunGuest(0, func(g platform.Guest) {
		kg := g.(*kvm.GuestCtx)
		irqs := uint64(0)
		g.OnIRQ(func(int) { irqs++ })
		phase := func(n, base int) {
			for i := 0; i < n; i++ {
				g.Hypercall()
				// A monotonic, never-recurring value: the world switch moves
				// it through the saved contexts as a parameter slot, so the
				// fault fires while parameterized super-ops are replaying.
				// (Before parameter slots this value would have filled the
				// per-cause variant chains and starved replay outright.)
				kg.CPU.MSR(arm.TPIDR_EL1, uint64(base+i))
				obs = append(obs, kg.CPU.Reg(arm.TPIDR_EL1))
				obs = append(obs, g.DeviceRead(uint64(i%4)*8))
				g.Work(500)
			}
		}
		phase(60, 0)
		warmHits = p.JITStats().Hits
		applied = applyFault(p.ARM(), k, fault.NewRand(0xfa017+uint64(k)))
		phase(60, 1000)
		obs = append(obs, irqs)
	})
	totalHits = p.JITStats().Hits

	sig = fmt.Sprintf("obs=%v\n", obs)
	for i := 0; i < 2; i++ {
		sig += fmt.Sprintf("cpu%d cycles=%d levels=%v\n", i, p.CPUCycles(i), p.LevelCycles(i))
	}
	tr := p.Trace()
	sig += fmt.Sprintf("traps=%d\n", tr.Total())
	details := tr.Details()
	keys := make([]string, 0, len(details))
	for d := range details {
		keys = append(keys, d)
	}
	sort.Strings(keys)
	for _, d := range keys {
		sig += fmt.Sprintf("%s=%d\n", d, details[d])
	}
	return sig, applied, warmHits, totalHits
}

// TestJITFaultParity: for every fault kind, on a nested stack that
// promotes heavily (v8.3) and a NEVE stack with deferred pages to corrupt
// (neve-vhe), the jit-on run must be byte-identical to the interpreted
// run.
func TestJITFaultParity(t *testing.T) {
	for _, name := range []string{"v8.3", "neve-vhe"} {
		for _, k := range fault.AllKinds() {
			k := k
			t.Run(fmt.Sprintf("%s/%s", name, k), func(t *testing.T) {
				on, appliedOn, warm, total := faultParityRun(t, name, false, k)
				off, appliedOff, _, offHits := faultParityRun(t, name, true, k)
				if appliedOn != appliedOff {
					t.Fatalf("fault applicability diverged: jit-on %v, jit-off %v", appliedOn, appliedOff)
				}
				if !appliedOn {
					if k != fault.VNCRCorrupt {
						t.Fatalf("kind %s unexpectedly inapplicable on %s", k, name)
					}
					t.Skipf("no NEVE pages on %s", name)
				}
				if warm == 0 {
					t.Fatalf("fault fired before any super-op replayed (hits=0 at injection)")
				}
				if name == "v8.3" && total == warm {
					// Only the heavy promoter must demonstrably keep
					// replaying across the fault; neve-vhe compiles so few
					// ops that a persistent GIC perturbation can retire its
					// causes outright (bailing to the interpreter is the
					// correct response either way).
					t.Fatalf("no super-op replayed after the fault (hits stuck at %d)", warm)
				}
				if offHits != 0 {
					t.Fatalf("jit-off run dispatched super-ops: %d hits", offHits)
				}
				if on != off {
					t.Fatalf("state diverged jit-on vs jit-off after %s:\n--- jit-on\n%s--- jit-off\n%s", k, on, off)
				}
			})
		}
	}
}

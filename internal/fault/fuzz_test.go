// Differential and robustness fuzzing of the NV/NEVE stacks (external
// test package: the fuzz harnesses drive whole platforms, which the fault
// package itself sits below in the import graph).
//
// Three targets:
//
//   - FuzzDifferentialNVvsNEVE: byte-driven guest programs run on the
//     v8.3 trap-and-emulate stack, the NEVE stack, and the all-disabled
//     NEVE ablation; every guest-visible value must agree and NEVE must
//     never trap more than NV (the paper's whole point).
//   - FuzzFaultPlanRecovery: arbitrary fault plans against a budgeted
//     stack must end in success or a typed *fault.SimError — never a raw
//     panic, never a hang.
//   - FuzzParsePlan: the plan grammar round-trips.
//
// Seed corpora live under testdata/fuzz/<FuzzName>/; `make fuzz-smoke`
// runs each target briefly in CI.
package fault_test

import (
	"errors"
	"reflect"
	"testing"

	"github.com/nevesim/neve/internal/arm"
	"github.com/nevesim/neve/internal/fault"
	"github.com/nevesim/neve/internal/kvm"
	"github.com/nevesim/neve/internal/platform"
)

// scriptResult is everything a fuzz program observed on one stack.
type scriptResult struct {
	obs   []uint64
	traps uint64
	err   *fault.SimError
}

// runScript interprets data as a guest program on the named registry
// stack: each byte pair is one operation and its operand. Budgets backstop
// the run so no input can hang the fuzzer.
func runScript(t *testing.T, name string, data []byte) scriptResult {
	t.Helper()
	spec := platform.MustLookup(name)
	spec.MaxTraps = 500_000
	spec.MaxSteps = 50_000_000
	return runScriptSpec(t, spec, data, nil)
}

// runScriptJIT is runScript with the trace-JIT layer explicitly on or
// off and no watchdog budgets: budgets install trap hooks, which disable
// the JIT at the trap site. Safe without a backstop — fuzz inputs are
// capped at 128 operations, each of bounded work. mid, when non-nil, is
// fired once halfway through the program — the point where warmed-up
// super-ops (parameterized ones included) are replaying — so the jit-on
// and jit-off runs see the identical perturbation at the identical point.
func runScriptJIT(t *testing.T, name string, data []byte, jitOff bool, mid func(s *kvm.Stack)) scriptResult {
	t.Helper()
	spec := platform.MustLookup(name)
	spec.JITOff = jitOff
	return runScriptSpec(t, spec, data, mid)
}

func runScriptSpec(t *testing.T, spec platform.Spec, data []byte, mid func(s *kvm.Stack)) scriptResult {
	t.Helper()
	p := platform.MustBuild(spec)
	var res scriptResult
	err := p.RunGuestErr(0, func(g platform.Guest) {
		kg := g.(*kvm.GuestCtx)
		irqs := uint64(0)
		g.OnIRQ(func(int) { irqs++ })
		virtioUp := false
		for i := 0; i+1 < len(data); i += 2 {
			if mid != nil && 2*i >= len(data) {
				mid(p.ARM())
				mid = nil
			}
			op, arg := data[i], uint64(data[i+1])
			switch op % 8 {
			case 0:
				kg.RAMWrite64(arg%128*8, arg*0x9e3779b97f4a7c15+uint64(i))
				res.obs = append(res.obs, kg.RAMRead64(arg%128*8))
			case 1:
				res.obs = append(res.obs, g.DeviceRead(arg%60*8))
			case 2:
				g.Hypercall()
			case 3:
				// A guest-hypervisor-class register access sequence: EL1
				// system registers the stacks virtualize differently.
				kg.CPU.MSR(arm.TPIDR_EL1, arg)
				kg.CPU.MSR(arm.CONTEXTIDR_EL1, arg^0xff)
				res.obs = append(res.obs, kg.CPU.Reg(arm.TPIDR_EL1), kg.CPU.Reg(arm.CONTEXTIDR_EL1))
			case 4:
				if !virtioUp {
					if err := kg.VirtioInit(); err != nil {
						t.Fatalf("%s: VirtioInit: %v", spec.Name, err)
					}
					virtioUp = true
				}
				v, err := kg.VirtioEcho(arg + 1)
				if err != nil {
					v = ^uint64(0)
				}
				res.obs = append(res.obs, v)
			case 5:
				g.Work(arg*16 + 1)
			case 6:
				p.ARM().M.Dist.AssertSPI(platform.NICSPI)
				g.Work(400)
			case 7:
				res.obs = append(res.obs, kg.PSCIVersion())
			}
		}
		res.obs = append(res.obs, irqs)
	})
	if err != nil {
		if !errors.As(err, &res.err) {
			t.Fatalf("%s: non-SimError failure: %v", spec.Name, err)
		}
	}
	res.traps = p.Trace().Total()
	return res
}

// FuzzDifferentialNVvsNEVE runs each input on the v8.3 (FEAT_NV
// trap-and-emulate), NEVE, and fully-ablated NEVE stacks and asserts the
// architectural invariants: identical guest-visible state, no unrecovered
// failures, and NEVE trapping no more than NV.
func FuzzDifferentialNVvsNEVE(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 0, 3, 7, 4, 9, 1, 5, 7, 0, 6, 0, 5, 8})
	f.Add([]byte{2, 0, 2, 0, 2, 0, 3, 0xff, 3, 0x80, 4, 1, 4, 2})
	// One seed per fault kind (data[0] selects), each with enough leading
	// traps to promote super-ops before the kind fires at the midpoint.
	f.Add([]byte{1, 0, 2, 0, 2, 0, 3, 1, 3, 2, 3, 3, 2, 0, 2, 0, 5, 4, 6, 0})
	f.Add([]byte{3, 0, 2, 0, 3, 5, 2, 0, 3, 6, 2, 0, 3, 7, 6, 0, 5, 8, 2, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			data = data[:256] // bound per-input runtime, not coverage
		}
		nv := runScript(t, "v8.3", data)
		if nv.err != nil {
			t.Fatalf("v8.3 stack died: %v\n%s", nv.err, nv.err.Diagnostic())
		}
		for _, name := range []string{"neve", "neve-ablate-none"} {
			got := runScript(t, name, data)
			if got.err != nil {
				t.Fatalf("%s stack died: %v\n%s", name, got.err, got.err.Diagnostic())
			}
			if !reflect.DeepEqual(got.obs, nv.obs) {
				t.Fatalf("%s diverged from v8.3:\n%v\nvs\n%v", name, got.obs, nv.obs)
			}
			if name == "neve" && got.traps > nv.traps {
				t.Fatalf("NEVE trapped more than NV: %d vs %d", got.traps, nv.traps)
			}
		}
		// Trace-JIT oracle: the same input with super-ops replaying and
		// with every trap interpreted must agree in all observables and
		// trap counts. v8.3 is the heavy promoter; neve exercises the
		// record/poison machinery and the tracked deferred-access-page
		// stores. A fault kind drawn from the input fires halfway through
		// the program — mid-replay, parameterized super-ops included — and
		// must perturb both runs identically: a perturbed walked or tracked
		// word bails the super-op to the interpreter, never replays stale
		// state.
		kinds := fault.AllKinds()
		var kind fault.Kind
		var seed uint64
		if len(data) > 0 {
			kind = kinds[int(data[0])%len(kinds)]
			seed = 0xfa220 + uint64(data[0])
		}
		mid := func(s *kvm.Stack) {
			if len(data) > 0 {
				applyFault(s, kind, fault.NewRand(seed))
			}
		}
		for _, name := range []string{"v8.3", "neve"} {
			jon := runScriptJIT(t, name, data, false, mid)
			joff := runScriptJIT(t, name, data, true, mid)
			if jon.err != nil || joff.err != nil {
				t.Fatalf("%s jit oracle died: on=%v off=%v", name, jon.err, joff.err)
			}
			if !reflect.DeepEqual(jon.obs, joff.obs) {
				t.Fatalf("%s diverged jit-on vs jit-off (fault %v mid-run):\n%v\nvs\n%v", name, kind, jon.obs, joff.obs)
			}
			if jon.traps != joff.traps {
				t.Fatalf("%s trap counts diverged jit-on vs jit-off (fault %v mid-run): %d vs %d", name, kind, jon.traps, joff.traps)
			}
		}
	})
}

// FuzzFaultPlanRecovery throws arbitrary fault plans at a budgeted stack:
// whatever the injector does, the run must end in success or a typed
// SimError. A raw panic or a hang is a bug in the recovery boundary.
func FuzzFaultPlanRecovery(f *testing.F) {
	f.Add(uint64(42), uint64(100), byte(0), byte(0), byte(2))
	f.Add(uint64(1), uint64(1), byte(3), byte(0xf), byte(1))
	f.Add(uint64(0xdead), uint64(7), byte(1), byte(2), byte(0))
	f.Fuzz(func(t *testing.T, seed, every uint64, count, kindsMask, stack byte) {
		plan := fault.Plan{Seed: seed, Every: 1 + every%256, Count: int(count % 16)}
		for _, k := range fault.AllKinds() {
			if kindsMask&(1<<uint(k)) != 0 {
				plan.Kinds = append(plan.Kinds, k)
			}
		}
		names := []string{"vm", "v8.3", "neve"}
		spec := platform.MustLookup(names[int(stack)%len(names)])
		spec.Faults = plan
		spec.MaxTraps = 200_000
		spec.MaxSteps = 20_000_000
		p, err := platform.Build(spec)
		if err != nil {
			t.Fatalf("constructed plan failed validation: %v", err)
		}
		err = p.RunGuestErr(0, func(g platform.Guest) {
			for i := 0; i < 200; i++ {
				g.Hypercall()
				g.Work(100)
				if i%8 == 0 {
					g.DeviceRead(0)
				}
			}
		})
		if err != nil {
			var se *fault.SimError
			if !errors.As(err, &se) {
				t.Fatalf("recovery boundary leaked a non-SimError: %v", err)
			}
			if se.Msg == "" {
				t.Fatalf("SimError with empty cause: %+v", se)
			}
		}
	})
}

// FuzzParsePlan: any string ParsePlan accepts renders back (String) to a
// string that parses to the identical plan, and the plan validates.
func FuzzParsePlan(f *testing.F) {
	f.Add("seed=42,every=100,count=5,kinds=irq+vncr+flip+device")
	f.Add("every=1")
	f.Add("off")
	f.Add("seed=9,every=0")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := fault.ParsePlan(s)
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("ParsePlan(%q) accepted an invalid plan: %v", s, err)
		}
		rt, err := fault.ParsePlan(p.String())
		if err != nil {
			t.Fatalf("String() of parsed %q does not re-parse: %v", s, err)
		}
		if !reflect.DeepEqual(rt, p) {
			t.Fatalf("round trip %q -> %+v -> %q -> %+v", s, p, p.String(), rt)
		}
	})
}

// Package workload models the application benchmarks of the paper's
// evaluation (Table 8, Figure 2) as event mixes over a small guest API that
// both the ARM and x86 stacks implement: bursts of guest CPU work
// interleaved with hypercalls, paravirtual device I/O, device interrupts,
// and scheduler IPIs.
//
// Two dynamics the paper analyzes are modeled explicitly:
//
//   - virtio notification suppression (Section 7.2): the frontend only
//     kicks the backend when the backend is idle, so the number of device
//     notifications is endogenous — a faster hypervisor handles kicks
//     sooner, re-enables notifications sooner, and therefore receives MORE
//     kicks ("having faster hardware can result in more virtualization
//     overhead", the x86 Memcached anomaly);
//
//   - wakeup IPIs: a vCPU sends a wakeup only if the producer-consumer
//     pipeline actually stalled, so slow exit handling (ARMv8.3) triggers
//     wakeups that fast handling (NEVE, x86) avoids.
package workload

// API is the guest-side execution interface. kvm.GuestCtx (ARM) and
// x86.GuestCtx implement it; Native is the bare-metal baseline.
type API interface {
	// Work burns n guest instructions (a preemption point).
	Work(n uint64)
	// Hypercall issues a null hypercall.
	Hypercall()
	// DeviceRead accesses the paravirtual device (the notification path).
	DeviceRead(off uint64) uint64
	// SendIPI sends an inter-processor interrupt to another vCPU.
	SendIPI(target, intid int)
	// OnIRQ registers the interrupt handler.
	OnIRQ(fn func(intid int))
}

// Clock exposes the vCPU cycle counter; both GuestCtx types implement it.
type Clock interface {
	Cycles() uint64
}

// Platform is the harness-side interface: operations a workload needs the
// surrounding machine to perform (it cannot trigger them from inside the
// guest).
type Platform interface {
	// InjectDeviceIRQ raises a device interrupt (NIC RX) routed to the
	// measured vCPU; it is delivered at the next preemption point.
	InjectDeviceIRQ()
	// ServicePeer lets the peer core (vCPU 1) absorb pending cross-core
	// interrupts, modeling its concurrent execution.
	ServicePeer()
	// HasPeer reports whether a second vCPU exists for IPIs.
	HasPeer() bool
}

// Profile parameterizes one application benchmark (Table 8).
type Profile struct {
	Name string
	// Description matches Table 8's workload summary.
	Description string
	// Ops is the number of operations a run executes.
	Ops int
	// OpWork is guest CPU work per operation, in instructions.
	OpWork uint64
	// HypercallsPerOp is the rate of null-hypercall-class events.
	HypercallsPerOp float64
	// RXPerOp is the rate of device interrupts received (network RX or
	// completion interrupts); the dominant cost for network loads under
	// ARMv8.3 (Section 7.2).
	RXPerOp float64
	// RXCoalesce is the per-packet polling cost of the NAPI-style receive
	// path: after an interrupt, further packets are polled without
	// interrupts while the receive path is busy. 0 disables coalescing.
	RXCoalesce uint64
	// TXPerOp is the rate of transmit notifications the guest would send
	// if the backend were always idle; notification suppression reduces
	// the actual kicks.
	TXPerOp float64
	// BackendWork is the backend's per-kick processing time (cycles): the
	// notification-suppression busy window. 0 disables suppression.
	BackendWork uint64
	// IPIPerOp is the rate of scheduler/wakeup IPI opportunities.
	IPIPerOp float64
	// WakeThreshold: a wakeup IPI is sent only if the last device event's
	// round trip exceeded this many cycles (the pipeline stalled). 0
	// means IPIs are unconditional (true synchronization IPIs, as in
	// hackbench).
	WakeThreshold uint64
}

// Scaled returns the profile adjusted for hardware that is f times faster:
// per-operation CPU work and backend processing shrink, while the external
// event rates stay fixed (the network does not speed up with the server).
// The paper uses this to explain the x86 Memcached anomaly: the faster x86
// server takes more exits per unit of work (Section 7.2).
func (p Profile) Scaled(f uint64) Profile {
	if f == 0 {
		f = 1
	}
	p.OpWork /= f
	p.BackendWork /= f
	p.RXCoalesce /= f
	p.WakeThreshold /= f
	return p
}

// Result is one workload run's measurement.
type Result struct {
	Profile string
	// Cycles is the guest-observed execution time.
	Cycles uint64
	// Kicks/RXIRQs/IPIs/Hypercalls are the event counts that actually
	// happened (kicks and IPIs are endogenous).
	Kicks      uint64
	RXIRQs     uint64
	IPIs       uint64
	Hypercalls uint64
}

// Run executes the profile on g, measuring with clk.
func (p *Profile) Run(g API, clk Clock, plat Platform) Result {
	res := Result{Profile: p.Name}
	var handled uint64
	g.OnIRQ(func(intid int) { handled++ })

	var accHC, accRX, accTX, accIPI float64
	var busyUntil, rxBusyUntil uint64
	var lastEventCost uint64

	start := clk.Cycles()
	for op := 0; op < p.Ops; op++ {
		g.Work(p.OpWork)

		accHC += p.HypercallsPerOp
		for accHC >= 1 {
			accHC--
			g.Hypercall()
			res.Hypercalls++
		}

		accRX += p.RXPerOp
		for accRX >= 1 {
			accRX--
			now := clk.Cycles()
			if now < rxBusyUntil {
				// NAPI polling: the receive path is still busy, the packet
				// is consumed without an interrupt.
				continue
			}
			before := now
			plat.InjectDeviceIRQ()
			g.Work(200) // reach the next preemption point; delivery happens
			after := clk.Cycles()
			lastEventCost = after - before
			queued := uint64(1)
			if p.OpWork > 0 {
				queued += lastEventCost / (p.OpWork + 1)
			}
			rxBusyUntil = after + p.RXCoalesce*queued
			res.RXIRQs++
		}

		accTX += p.TXPerOp
		for accTX >= 1 {
			accTX--
			now := clk.Cycles()
			if now < busyUntil {
				// Backend busy: notification suppressed, the packet is
				// queued and processed within the current busy window.
				continue
			}
			before := now
			g.DeviceRead(0) // the kick
			after := clk.Cycles()
			lastEventCost = after - before
			// The backend drains everything that queued while the kick
			// was being handled, then re-enables notifications.
			queued := uint64(1)
			if p.OpWork > 0 {
				queued += lastEventCost / (p.OpWork + 1)
			}
			busyUntil = after + p.BackendWork*queued
			res.Kicks++
		}

		accIPI += p.IPIPerOp
		for accIPI >= 1 {
			accIPI--
			if !plat.HasPeer() {
				continue
			}
			if p.WakeThreshold != 0 && lastEventCost <= p.WakeThreshold {
				// The consumer never went idle: no wakeup needed.
				continue
			}
			g.SendIPI(1, 3)
			plat.ServicePeer()
			res.IPIs++
		}
	}
	res.Cycles = clk.Cycles() - start
	return res
}

// Native is the bare-metal baseline implementation of API and Clock: events
// cost their native (non-virtualized) handling time.
type Native struct {
	cycles     uint64
	irqHandler func(int)
}

// Native per-event costs (cycles): a syscall-class trap, a device register
// access, an interrupt round trip, a physical IPI round trip.
const (
	nativeHypercall = 260
	nativeDeviceIO  = 180
	nativeIRQ       = 600
	nativeIPI       = 1400
)

// Work implements API.
func (n *Native) Work(c uint64) { n.cycles += c }

// Hypercall implements API (a native syscall-class operation).
func (n *Native) Hypercall() { n.cycles += nativeHypercall }

// DeviceRead implements API (a native device register access).
func (n *Native) DeviceRead(off uint64) uint64 {
	n.cycles += nativeDeviceIO
	return 1
}

// SendIPI implements API.
func (n *Native) SendIPI(target, intid int) { n.cycles += nativeIPI }

// OnIRQ implements API.
func (n *Native) OnIRQ(fn func(int)) { n.irqHandler = fn }

// Cycles implements Clock.
func (n *Native) Cycles() uint64 { return n.cycles }

// InjectDeviceIRQ implements Platform for the native baseline.
func (n *Native) InjectDeviceIRQ() {
	n.cycles += nativeIRQ
	if n.irqHandler != nil {
		n.irqHandler(40)
	}
}

// ServicePeer implements Platform.
func (n *Native) ServicePeer() {}

// HasPeer implements Platform.
func (n *Native) HasPeer() bool { return true }

package workload

// Multi-vCPU workloads for the SMP scale-out experiments: interrupt-bound
// kernels whose cost is dominated by cross-vCPU communication through the
// GIC distributor, the paper's hackbench dynamic pushed to 8-64 vCPUs.
// Programs run under the kvm epoch-lockstep engine; they must keep all Go
// state per-vCPU so that epochs may execute on parallel goroutines.

// SMPAPI is the guest-side interface an SMP program runs against. It
// extends the single-vCPU API with the operations that only exist on a
// multi-vCPU guest: a scheduling yield, shared guest RAM, and the vCPU's
// own identity. kvm.SMPGuest implements it.
type SMPAPI interface {
	API
	Clock
	// Yield ends the vCPU's scheduling quantum (an epoch segment).
	Yield()
	// RAMRead64/RAMWrite64 access cache-coherent guest RAM shared by all
	// vCPUs.
	RAMRead64(off uint64) uint64
	RAMWrite64(off uint64, v uint64)
	// ArmTimer programs the vCPU's virtual timer to fire delta cycles
	// from now; the expiry arrives through OnIRQ like any interrupt.
	ArmTimer(delta uint64)
	// DeviceKick rings the per-vCPU emulated device doorbell; the device
	// raises its completion interrupt on the issuing core.
	DeviceKick()
	// ID is the vCPU index.
	ID() int
}

// SMPProfile parameterizes one multi-vCPU workload; Programs instantiates
// it for a given vCPU count, so the same profile sweeps across machine
// widths.
type SMPProfile struct {
	Name        string
	Description string
	// Rounds is the number of communication rounds each vCPU executes.
	Rounds int
	// OpWork is the guest CPU work between communication events.
	OpWork uint64

	pattern func(p SMPProfile, n, i int) func(g SMPAPI)
}

// Programs returns one program per vCPU implementing the profile's
// communication pattern across n vCPUs.
func (p SMPProfile) Programs(n int) []func(g SMPAPI) {
	progs := make([]func(g SMPAPI), n)
	for i := 0; i < n; i++ {
		progs[i] = p.pattern(p, n, i)
	}
	return progs
}

// ipiRing is the IPI-storm pattern: every vCPU works briefly, kicks its
// ring successor, and yields — all n vCPUs funnel SGI writes through the
// one distributor every round (hackbench's scheduler-IPI shape at scale).
func ipiRing(p SMPProfile, n, i int) func(g SMPAPI) {
	return func(g SMPAPI) {
		g.OnIRQ(func(intid int) {})
		for r := 0; r < p.Rounds; r++ {
			g.Work(p.OpWork)
			if n > 1 {
				g.SendIPI((i+1)%n, r%8)
			}
			g.Yield()
		}
	}
}

// fanOut is the broadcast pattern: vCPU 0 publishes a message in shared
// RAM and kicks every worker, so each round queues n-1 distributor
// transactions in a single epoch — the worst-case contention burst.
func fanOut(p SMPProfile, n, i int) func(g SMPAPI) {
	const msgBase = 0x2000
	if i == 0 {
		return func(g SMPAPI) {
			for r := 0; r < p.Rounds; r++ {
				g.RAMWrite64(msgBase, uint64(r)+1)
				for t := 1; t < n; t++ {
					g.SendIPI(t, r%8)
				}
				g.Work(p.OpWork)
				g.Yield()
			}
		}
	}
	return func(g SMPAPI) {
		g.OnIRQ(func(intid int) {})
		for r := 0; r < p.Rounds; r++ {
			g.Work(p.OpWork)
			g.Yield()
		}
		// Consume the last published message through shared RAM.
		g.RAMRead64(msgBase)
	}
}

// storm is the interrupt-storm pattern: each round, every vCPU arms its
// virtual timer, works past the deadline (taking the timer interrupt
// mid-round), rings its device doorbell (taking the completion
// interrupt), and kicks its ring successor — the event mix of a loaded
// production core, where timer ticks, device completions, and scheduler
// IPIs interleave at comparable rates. All three interrupt sources are
// serviced on the issuing core's own trap path; only the ring IPI
// crosses vCPUs.
func storm(p SMPProfile, n, i int) func(g SMPAPI) {
	return func(g SMPAPI) {
		g.OnIRQ(func(intid int) {})
		for r := 0; r < p.Rounds; r++ {
			g.ArmTimer(p.OpWork / 2)
			g.Work(p.OpWork)
			g.DeviceKick()
			g.Work(p.OpWork)
			if n > 1 {
				g.SendIPI((i+1)%n, r%8)
			}
			g.Yield()
		}
	}
}

// stormBurst layers broadcast bursts over the storm mix: each round one
// rotating vCPU IPI-broadcasts to every sibling (n-1 distributor
// transactions in one epoch) while the rest run the timer+device local
// storm and answer with a ring kick — contention spikes riding on a
// steady interrupt load.
func stormBurst(p SMPProfile, n, i int) func(g SMPAPI) {
	return func(g SMPAPI) {
		g.OnIRQ(func(intid int) {})
		for r := 0; r < p.Rounds; r++ {
			g.ArmTimer(p.OpWork / 2)
			g.Work(p.OpWork)
			g.DeviceKick()
			g.Work(p.OpWork)
			if n > 1 {
				if i == r%n {
					for t := 0; t < n; t++ {
						if t != i {
							g.SendIPI(t, r%8)
						}
					}
				} else {
					g.SendIPI((i+1)%n, r%8)
				}
			}
			g.Yield()
		}
	}
}

// SMPProfiles returns the multi-vCPU workloads of the scale-out sweep.
func SMPProfiles() []SMPProfile {
	return []SMPProfile{
		{
			Name:        "ipi-ring",
			Description: "IPI storm: every vCPU kicks its ring successor each round",
			Rounds:      20, OpWork: 8_000,
			pattern: ipiRing,
		},
		{
			Name:        "fanout",
			Description: "Broadcast: vCPU 0 publishes to shared RAM and kicks all workers",
			Rounds:      12, OpWork: 10_000,
			pattern: fanOut,
		},
		{
			Name:        "storm",
			Description: "Interrupt storm: timer tick + device completion + ring IPI per round",
			Rounds:      24, OpWork: 3_000,
			pattern: storm,
		},
		{
			Name:        "storm-burst",
			Description: "Interrupt storm with rotating IPI broadcast bursts",
			Rounds:      16, OpWork: 2_500,
			pattern: stormBurst,
		},
	}
}

// SMPProfileByName returns the named SMP profile.
func SMPProfileByName(name string) (SMPProfile, bool) {
	for _, p := range SMPProfiles() {
		if p.Name == name {
			return p, true
		}
	}
	return SMPProfile{}, false
}

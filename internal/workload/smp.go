package workload

// Multi-vCPU workloads for the SMP scale-out experiments: interrupt-bound
// kernels whose cost is dominated by cross-vCPU communication through the
// GIC distributor, the paper's hackbench dynamic pushed to 8-64 vCPUs.
// Programs run under the kvm epoch-lockstep engine; they must keep all Go
// state per-vCPU so that epochs may execute on parallel goroutines.

// SMPAPI is the guest-side interface an SMP program runs against. It
// extends the single-vCPU API with the operations that only exist on a
// multi-vCPU guest: a scheduling yield, shared guest RAM, and the vCPU's
// own identity. kvm.SMPGuest implements it.
type SMPAPI interface {
	API
	Clock
	// Yield ends the vCPU's scheduling quantum (an epoch segment).
	Yield()
	// RAMRead64/RAMWrite64 access cache-coherent guest RAM shared by all
	// vCPUs.
	RAMRead64(off uint64) uint64
	RAMWrite64(off uint64, v uint64)
	// ID is the vCPU index.
	ID() int
}

// SMPProfile parameterizes one multi-vCPU workload; Programs instantiates
// it for a given vCPU count, so the same profile sweeps across machine
// widths.
type SMPProfile struct {
	Name        string
	Description string
	// Rounds is the number of communication rounds each vCPU executes.
	Rounds int
	// OpWork is the guest CPU work between communication events.
	OpWork uint64

	pattern func(p SMPProfile, n, i int) func(g SMPAPI)
}

// Programs returns one program per vCPU implementing the profile's
// communication pattern across n vCPUs.
func (p SMPProfile) Programs(n int) []func(g SMPAPI) {
	progs := make([]func(g SMPAPI), n)
	for i := 0; i < n; i++ {
		progs[i] = p.pattern(p, n, i)
	}
	return progs
}

// ipiRing is the IPI-storm pattern: every vCPU works briefly, kicks its
// ring successor, and yields — all n vCPUs funnel SGI writes through the
// one distributor every round (hackbench's scheduler-IPI shape at scale).
func ipiRing(p SMPProfile, n, i int) func(g SMPAPI) {
	return func(g SMPAPI) {
		g.OnIRQ(func(intid int) {})
		for r := 0; r < p.Rounds; r++ {
			g.Work(p.OpWork)
			if n > 1 {
				g.SendIPI((i+1)%n, r%8)
			}
			g.Yield()
		}
	}
}

// fanOut is the broadcast pattern: vCPU 0 publishes a message in shared
// RAM and kicks every worker, so each round queues n-1 distributor
// transactions in a single epoch — the worst-case contention burst.
func fanOut(p SMPProfile, n, i int) func(g SMPAPI) {
	const msgBase = 0x2000
	if i == 0 {
		return func(g SMPAPI) {
			for r := 0; r < p.Rounds; r++ {
				g.RAMWrite64(msgBase, uint64(r)+1)
				for t := 1; t < n; t++ {
					g.SendIPI(t, r%8)
				}
				g.Work(p.OpWork)
				g.Yield()
			}
		}
	}
	return func(g SMPAPI) {
		g.OnIRQ(func(intid int) {})
		for r := 0; r < p.Rounds; r++ {
			g.Work(p.OpWork)
			g.Yield()
		}
		// Consume the last published message through shared RAM.
		g.RAMRead64(msgBase)
	}
}

// SMPProfiles returns the multi-vCPU workloads of the scale-out sweep.
func SMPProfiles() []SMPProfile {
	return []SMPProfile{
		{
			Name:        "ipi-ring",
			Description: "IPI storm: every vCPU kicks its ring successor each round",
			Rounds:      20, OpWork: 8_000,
			pattern: ipiRing,
		},
		{
			Name:        "fanout",
			Description: "Broadcast: vCPU 0 publishes to shared RAM and kicks all workers",
			Rounds:      12, OpWork: 10_000,
			pattern: fanOut,
		},
	}
}

// SMPProfileByName returns the named SMP profile.
func SMPProfileByName(name string) (SMPProfile, bool) {
	for _, p := range SMPProfiles() {
		if p.Name == name {
			return p, true
		}
	}
	return SMPProfile{}, false
}

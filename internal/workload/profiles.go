package workload

// The application benchmarks of Table 8, modeled as event mixes. Rates are
// derived from the workloads' characters the paper describes: CPU-intensive
// workloads (kernbench, SPECjvm) interact rarely with the hypervisor;
// hackbench is IPI-dominated ("the OS frequently sends IPIs to synchronize
// and schedule tasks across CPU cores"); the network workloads are
// dominated by device interrupts and notifications ("the high overhead is
// likely due to the high frequency of interrupts caused by many incoming
// network packets", Section 7.2).

// Profiles returns the ten application benchmarks in Figure 2's order.
func Profiles() []Profile {
	return []Profile{
		{
			Name:        "kernbench",
			Description: "Compilation of the Linux kernel (allnoconfig, GCC)",
			Ops:         40, OpWork: 1_000_000,
			HypercallsPerOp: 0.05,
			RXPerOp:         0.10,
			TXPerOp:         0.15, BackendWork: 8_000,
			IPIPerOp: 0.45,
		},
		{
			Name:        "hackbench",
			Description: "Unix domain sockets, 100 process groups, 500 loops",
			Ops:         300, OpWork: 40_000,
			HypercallsPerOp: 0.10,
			IPIPerOp:        1.0, // scheduler IPIs dominate
		},
		{
			Name:        "SPECjvm2008",
			Description: "Java Runtime Environment real-life applications",
			Ops:         30, OpWork: 2_000_000,
			HypercallsPerOp: 0.10,
			RXPerOp:         0.05,
			TXPerOp:         0.10, BackendWork: 8_000,
			IPIPerOp: 0.45,
		},
		{
			Name:        "TCP_RR",
			Description: "netperf request-response (latency)",
			Ops:         400, OpWork: 30_000,
			RXPerOp:    1.0, // one RX interrupt per transaction
			RXCoalesce: 30_000,
			TXPerOp:    1.0, BackendWork: 5_000,
		},
		{
			Name:        "TCP_STREAM",
			Description: "netperf receive throughput",
			Ops:         400, OpWork: 42_000,
			RXPerOp: 0.80, RXCoalesce: 38_000,
			TXPerOp: 0.25, BackendWork: 10_000,
		},
		{
			Name:        "TCP_MAERTS",
			Description: "netperf transmit throughput",
			Ops:         400, OpWork: 26_000,
			RXPerOp: 0.80, RXCoalesce: 50_000, // transmit completions, batched
			TXPerOp: 1.0, BackendWork: 14_000,
			IPIPerOp: 0.9, WakeThreshold: 150_000, // vhost wakeups when stalled
		},
		{
			Name:        "Apache",
			Description: "ApacheBench, 41 KB file, 10 concurrent requests",
			Ops:         300, OpWork: 34_000,
			HypercallsPerOp: 0.05,
			RXPerOp:         0.9, RXCoalesce: 52_000,
			TXPerOp: 1.0, BackendWork: 12_000,
			IPIPerOp: 0.7, WakeThreshold: 150_000,
		},
		{
			Name:        "Nginx",
			Description: "Siege, 41 KB file, 8 concurrent requests",
			Ops:         300, OpWork: 38_000,
			HypercallsPerOp: 0.05,
			RXPerOp:         0.8, RXCoalesce: 56_000,
			TXPerOp: 1.0, BackendWork: 12_000,
			IPIPerOp: 0.6, WakeThreshold: 150_000,
		},
		{
			Name:        "Memcached",
			Description: "memtier benchmark, default parameters",
			Ops:         400, OpWork: 22_000,
			RXPerOp: 1.0, RXCoalesce: 48_000, // one request per RX interrupt, batched under load
			TXPerOp: 1.0, BackendWork: 9_000,
			IPIPerOp: 1.0, WakeThreshold: 150_000,
		},
		{
			Name:        "MySQL",
			Description: "SysBench, 200 parallel transactions",
			Ops:         150, OpWork: 110_000,
			HypercallsPerOp: 0.10,
			RXPerOp:         0.6, RXCoalesce: 60_000,
			TXPerOp: 0.8, BackendWork: 10_000,
			IPIPerOp: 0.8, WakeThreshold: 150_000,
		},
	}
}

// ProfileByName returns the named profile.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

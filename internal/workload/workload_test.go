package workload

import (
	"testing"
	"testing/quick"
)

// fakeGuest counts events and charges configurable costs.
type fakeGuest struct {
	cycles    uint64
	hcCost    uint64
	devCost   uint64
	ipiCost   uint64
	irqCost   uint64
	hc        int
	dev       int
	ipi       int
	irq       int
	irqHandle func(int)
}

func (f *fakeGuest) Work(n uint64) { f.cycles += n }
func (f *fakeGuest) Hypercall()    { f.hc++; f.cycles += f.hcCost }
func (f *fakeGuest) DeviceRead(off uint64) uint64 {
	f.dev++
	f.cycles += f.devCost
	return 1
}
func (f *fakeGuest) SendIPI(target, intid int) { f.ipi++; f.cycles += f.ipiCost }
func (f *fakeGuest) OnIRQ(fn func(int))        { f.irqHandle = fn }
func (f *fakeGuest) Cycles() uint64            { return f.cycles }

// Platform side.
func (f *fakeGuest) InjectDeviceIRQ() {
	f.irq++
	f.cycles += f.irqCost
	if f.irqHandle != nil {
		f.irqHandle(48)
	}
}
func (f *fakeGuest) ServicePeer()  {}
func (f *fakeGuest) HasPeer() bool { return true }

func TestEventRates(t *testing.T) {
	p := Profile{Name: "t", Ops: 100, OpWork: 1000,
		HypercallsPerOp: 0.5, RXPerOp: 0.25, TXPerOp: 1, IPIPerOp: 0.1}
	g := &fakeGuest{hcCost: 10, devCost: 10, ipiCost: 10, irqCost: 10}
	res := p.Run(g, g, g)
	if g.hc != 50 || res.Hypercalls != 50 {
		t.Errorf("hypercalls = %d/%d, want 50", g.hc, res.Hypercalls)
	}
	if g.irq != 25 || res.RXIRQs != 25 {
		t.Errorf("rx = %d/%d, want 25", g.irq, res.RXIRQs)
	}
	if g.dev != 100 || res.Kicks != 100 {
		t.Errorf("kicks = %d/%d, want 100 (no suppression configured)", g.dev, res.Kicks)
	}
	if g.ipi < 9 || g.ipi > 10 || res.IPIs != uint64(g.ipi) {
		t.Errorf("ipis = %d/%d, want ~10 (fractional accumulation)", g.ipi, res.IPIs)
	}
	if res.Cycles == 0 {
		t.Error("no cycles measured")
	}
}

func TestNotificationSuppression(t *testing.T) {
	// With an expensive kick and a busy backend, most notifications are
	// suppressed; with a cheap kick and idle backend, every op kicks.
	slow := Profile{Ops: 100, OpWork: 1000, TXPerOp: 1, BackendWork: 5000}
	g := &fakeGuest{devCost: 20_000}
	resSlow := slow.Run(g, g, g)
	if resSlow.Kicks >= 100 {
		t.Errorf("slow kicks = %d, want suppression", resSlow.Kicks)
	}
	g2 := &fakeGuest{devCost: 100}
	fast := Profile{Ops: 100, OpWork: 1000, TXPerOp: 1, BackendWork: 0}
	resFast := fast.Run(g2, g2, g2)
	if resFast.Kicks != 100 {
		t.Errorf("fast kicks = %d, want 100", resFast.Kicks)
	}
}

func TestSuppressionMoreEffectiveWhenHandlingSlower(t *testing.T) {
	// The paper's anomaly mechanism: slower kick handling means bigger
	// batches, so fewer notifications (Section 7.2).
	p := Profile{Ops: 200, OpWork: 1000, TXPerOp: 1, BackendWork: 2000}
	cheap := &fakeGuest{devCost: 1000}
	rc := p.Run(cheap, cheap, cheap)
	costly := &fakeGuest{devCost: 30_000}
	re := p.Run(costly, costly, costly)
	if re.Kicks >= rc.Kicks {
		t.Errorf("expensive-kick kicks = %d, cheap-kick kicks = %d: want fewer when slower",
			re.Kicks, rc.Kicks)
	}
}

func TestRXCoalescing(t *testing.T) {
	p := Profile{Ops: 100, OpWork: 1000, RXPerOp: 1, RXCoalesce: 3000}
	g := &fakeGuest{irqCost: 10_000}
	res := p.Run(g, g, g)
	if res.RXIRQs >= 100 {
		t.Errorf("rx = %d, want coalescing", res.RXIRQs)
	}
	// Without coalescing every op interrupts.
	p.RXCoalesce = 0
	g2 := &fakeGuest{irqCost: 10_000}
	res2 := p.Run(g2, g2, g2)
	if res2.RXIRQs != 100 {
		t.Errorf("uncoalesced rx = %d, want 100", res2.RXIRQs)
	}
}

func TestWakeupIPIsOnlyWhenStalled(t *testing.T) {
	p := Profile{Ops: 100, OpWork: 1000, TXPerOp: 1, IPIPerOp: 1, WakeThreshold: 5000}
	fast := &fakeGuest{devCost: 1000}
	if res := p.Run(fast, fast, fast); res.IPIs != 0 {
		t.Errorf("fast handling sent %d wakeups, want 0", res.IPIs)
	}
	slow := &fakeGuest{devCost: 50_000}
	if res := p.Run(slow, slow, slow); res.IPIs == 0 {
		t.Error("slow handling sent no wakeups")
	}
}

func TestScaled(t *testing.T) {
	p := Profile{OpWork: 900, BackendWork: 300, RXCoalesce: 90, WakeThreshold: 150, RXPerOp: 1}
	s := p.Scaled(3)
	if s.OpWork != 300 || s.BackendWork != 100 || s.RXCoalesce != 30 || s.WakeThreshold != 50 {
		t.Errorf("Scaled = %+v", s)
	}
	if s.RXPerOp != 1 {
		t.Error("external event rate must not scale")
	}
	if z := p.Scaled(0); z.OpWork != 900 {
		t.Error("Scaled(0) must be identity")
	}
}

func TestNativeBaseline(t *testing.T) {
	n := &Native{}
	p := Profile{Ops: 10, OpWork: 1000, HypercallsPerOp: 1, RXPerOp: 1, TXPerOp: 1}
	res := p.Run(n, n, n)
	want := uint64(10*1000 + 10*nativeHypercall + 10*nativeIRQ + 10*nativeDeviceIO + 10*200)
	if res.Cycles != want {
		t.Errorf("native cycles = %d, want %d", res.Cycles, want)
	}
}

func TestProfilesComplete(t *testing.T) {
	ps := Profiles()
	if len(ps) != 10 {
		t.Fatalf("profiles = %d, want the 10 application benchmarks of Table 8", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if p.Name == "" || p.Description == "" {
			t.Errorf("profile %+v missing name/description", p)
		}
		if seen[p.Name] {
			t.Errorf("duplicate profile %s", p.Name)
		}
		seen[p.Name] = true
		if p.Ops <= 0 || p.OpWork == 0 {
			t.Errorf("profile %s has no work", p.Name)
		}
	}
	for _, want := range []string{"kernbench", "hackbench", "SPECjvm2008", "TCP_RR",
		"TCP_STREAM", "TCP_MAERTS", "Apache", "Nginx", "Memcached", "MySQL"} {
		if !seen[want] {
			t.Errorf("missing Table 8 workload %s", want)
		}
	}
}

func TestProfileByName(t *testing.T) {
	if p, ok := ProfileByName("Memcached"); !ok || p.Name != "Memcached" {
		t.Fatal("ProfileByName(Memcached) failed")
	}
	if _, ok := ProfileByName("nope"); ok {
		t.Fatal("ProfileByName(nope) succeeded")
	}
}

func TestQuickRatesNeverExceedOps(t *testing.T) {
	f := func(rate8 uint8, ops8 uint8) bool {
		rate := float64(rate8%100) / 100
		ops := int(ops8%50) + 1
		p := Profile{Ops: ops, OpWork: 100, HypercallsPerOp: rate}
		g := &fakeGuest{}
		res := p.Run(g, g, g)
		want := uint64(rate * float64(ops))
		// Fractional accumulation may round down by at most one.
		return res.Hypercalls <= want+1 && res.Hypercalls+1 >= want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

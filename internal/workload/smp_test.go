package workload

import "testing"

// fakeSMP counts the events a program issues; shared RAM is a plain map
// because the fake runs programs one at a time.
type fakeSMP struct {
	Native
	id     int
	ram    map[uint64]uint64
	ipis   int
	yields int
	reads  int
	writes int
	timers int
	kicks  int
}

func (f *fakeSMP) SendIPI(target, intid int) {
	if intid < 0 || intid > 7 {
		panic("SGI out of guest range")
	}
	f.ipis++
}
func (f *fakeSMP) Yield()  { f.yields++ }
func (f *fakeSMP) ID() int { return f.id }
func (f *fakeSMP) RAMRead64(off uint64) uint64 {
	f.reads++
	return f.ram[off]
}
func (f *fakeSMP) RAMWrite64(off uint64, v uint64) {
	f.writes++
	f.ram[off] = v
}
func (f *fakeSMP) ArmTimer(delta uint64) {
	if delta == 0 {
		panic("zero timer delta")
	}
	f.timers++
}
func (f *fakeSMP) DeviceKick() { f.kicks++ }

func runFake(p SMPProfile, n int) []*fakeSMP {
	progs := p.Programs(n)
	ram := map[uint64]uint64{}
	fakes := make([]*fakeSMP, n)
	for i, prog := range progs {
		fakes[i] = &fakeSMP{id: i, ram: ram}
		prog(fakes[i])
	}
	return fakes
}

func TestSMPProfileIPIRing(t *testing.T) {
	p, ok := SMPProfileByName("ipi-ring")
	if !ok {
		t.Fatal("ipi-ring missing")
	}
	for _, n := range []int{1, 8, 64} {
		fakes := runFake(p, n)
		for i, f := range fakes {
			wantIPIs := p.Rounds
			if n == 1 {
				wantIPIs = 0 // no successor to kick
			}
			if f.ipis != wantIPIs || f.yields != p.Rounds {
				t.Fatalf("n=%d vcpu%d: ipis=%d yields=%d, want %d/%d",
					n, i, f.ipis, f.yields, wantIPIs, p.Rounds)
			}
		}
	}
}

func TestSMPProfileFanOut(t *testing.T) {
	p, ok := SMPProfileByName("fanout")
	if !ok {
		t.Fatal("fanout missing")
	}
	n := 8
	fakes := runFake(p, n)
	if fakes[0].ipis != (n-1)*p.Rounds {
		t.Fatalf("root sent %d IPIs, want %d", fakes[0].ipis, (n-1)*p.Rounds)
	}
	if fakes[0].writes != p.Rounds {
		t.Fatalf("root published %d messages, want %d", fakes[0].writes, p.Rounds)
	}
	for i := 1; i < n; i++ {
		if fakes[i].ipis != 0 || fakes[i].reads != 1 {
			t.Fatalf("worker %d: ipis=%d reads=%d", i, fakes[i].ipis, fakes[i].reads)
		}
	}
	// Workers observe the last published message.
	if got := fakes[1].ram[0x2000]; got != uint64(p.Rounds) {
		t.Fatalf("last message = %d, want %d", got, p.Rounds)
	}
}

func TestSMPProfileStorm(t *testing.T) {
	p, ok := SMPProfileByName("storm")
	if !ok {
		t.Fatal("storm missing")
	}
	n := 8
	fakes := runFake(p, n)
	for i, f := range fakes {
		if f.timers != p.Rounds || f.kicks != p.Rounds || f.ipis != p.Rounds {
			t.Fatalf("vcpu%d: timers=%d kicks=%d ipis=%d, want %d each",
				i, f.timers, f.kicks, f.ipis, p.Rounds)
		}
	}
}

func TestSMPProfileStormBurst(t *testing.T) {
	p, ok := SMPProfileByName("storm-burst")
	if !ok {
		t.Fatal("storm-burst missing")
	}
	n := 4
	fakes := runFake(p, n)
	// Each vCPU broadcasts (n-1 IPIs) on the rounds where it is the
	// rotating broadcaster and sends one ring IPI on every other round.
	for i, f := range fakes {
		bursts := 0
		for r := 0; r < p.Rounds; r++ {
			if i == r%n {
				bursts++
			}
		}
		want := bursts*(n-1) + (p.Rounds - bursts)
		if f.ipis != want {
			t.Fatalf("vcpu%d: ipis=%d, want %d", i, f.ipis, want)
		}
		if f.timers != p.Rounds || f.kicks != p.Rounds {
			t.Fatalf("vcpu%d: timers=%d kicks=%d, want %d each", i, f.timers, f.kicks, p.Rounds)
		}
	}
}

func TestSMPProfilesDistinctNames(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range SMPProfiles() {
		if seen[p.Name] {
			t.Fatalf("duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
		if len(p.Programs(4)) != 4 {
			t.Fatalf("%s: Programs(4) wrong length", p.Name)
		}
	}
}

// Package core implements NEVE, the Nested Virtualization Extensions for
// ARM proposed by the paper (Section 6; adopted as FEAT_NV2 in ARMv8.4).
//
// NEVE observes that most system registers a guest hypervisor accesses do
// not have an immediate effect on its own execution: VM registers merely
// prepare hardware state for a later context switch. NEVE therefore
// coalesces and defers the traps that ARMv8.3 would take on every access:
//
//   - VM system registers (Table 3) are transparently rewritten into loads
//     and stores on a deferred access page in normal memory, addressed by
//     the new VNCR_EL2 register;
//   - hypervisor control registers with format-compatible EL1 counterparts
//     (Table 4) are redirected to those EL1 registers, which is correct
//     precisely because the guest hypervisor really runs in EL1;
//   - the remaining control registers keep a cached copy in the deferred
//     access page so reads avoid traps, and only writes trap.
//
// The Engine type plugs into the CPU model's NV2 hook, playing the role of
// the proposed hardware logic.
package core

import (
	"fmt"

	"github.com/nevesim/neve/internal/arm"
)

// Treatment is NEVE's handling of one system register accessed from virtual
// EL2, per Tables 3-5 of the paper.
type Treatment int

const (
	// TreatTrap: NEVE does not cover the register; the ARMv8.3 trap is
	// taken (EL2 timers, whose reads must observe hardware-updated values).
	TreatTrap Treatment = iota
	// TreatVNCR: reads and writes are rewritten to the deferred access
	// page (Table 3 "VM system registers").
	TreatVNCR
	// TreatRedirect: accesses are redirected to the corresponding EL1
	// register (Table 4 "Redirect to *_EL1").
	TreatRedirect
	// TreatTrapOnWrite: reads come from a cached copy in the deferred
	// access page; writes trap so the host hypervisor can apply them
	// (Table 4/5 "Trap on write").
	TreatTrapOnWrite
	// TreatRedirectOrTrap: redirect to the EL1 register for VHE guest
	// hypervisors (identical formats); cached-read/trapped-write otherwise
	// (Table 4, TCR_EL2 and TTBR0_EL2).
	TreatRedirectOrTrap
)

func (t Treatment) String() string {
	switch t {
	case TreatTrap:
		return "trap"
	case TreatVNCR:
		return "deferred-page"
	case TreatRedirect:
		return "redirect-el1"
	case TreatTrapOnWrite:
		return "trap-on-write"
	case TreatRedirectOrTrap:
		return "redirect-or-trap"
	default:
		return fmt.Sprintf("treatment(%d)", int(t))
	}
}

// Class groups registers the way the paper's tables do, for reporting.
type Class int

const (
	ClassNone Class = iota
	// Table 3 groups.
	ClassVMTrapControl
	ClassVMExecControl
	ClassThreadID
	ClassVMExtra // VNCR-mapped context KVM switches; omitted from Table 3 for space
	// Table 4 groups.
	ClassHypRedirect
	ClassHypRedirectVHE
	ClassHypTrapOnWrite
	ClassHypRedirectOrTrap
	// Table 5.
	ClassGICHyp
	// Section 6.1 closing paragraph.
	ClassDebugPMU
	ClassTimer
)

func (c Class) String() string {
	switch c {
	case ClassVMTrapControl:
		return "VM Trap Control"
	case ClassVMExecControl:
		return "VM Execution Control"
	case ClassThreadID:
		return "Thread ID"
	case ClassVMExtra:
		return "VM Context (ARMv8.4 addition)"
	case ClassHypRedirect:
		return "Redirect to *_EL1"
	case ClassHypRedirectVHE:
		return "Redirect to *_EL1 (VHE)"
	case ClassHypTrapOnWrite:
		return "Trap on write"
	case ClassHypRedirectOrTrap:
		return "Redirect or trap"
	case ClassGICHyp:
		return "GIC Hypervisor Control"
	case ClassDebugPMU:
		return "Debug and PMU"
	case ClassTimer:
		return "Hypervisor Timer"
	default:
		return "unclassified"
	}
}

// Rule is the NEVE policy for one register.
type Rule struct {
	Reg       arm.SysReg
	Class     Class
	Treatment Treatment
	// Redirect is the EL1 target for redirect treatments.
	Redirect arm.SysReg
	// VNCROffset is the register's slot in the deferred access page, or -1.
	VNCROffset int
}

var (
	rules   [arm.NumSysRegs]Rule
	ordered []arm.SysReg
	nextOff int
	// resolved caches resolveRule for every register — the explicit rule,
	// or the aliased register's rule for *_EL12/*_EL02 encodings — so the
	// per-access lookup in Engine.Access and Page.Has is one array load.
	resolved [arm.NumSysRegs]Rule
)

// RuleFor returns the NEVE policy for r. Registers without an explicit rule
// trap (zero Rule with TreatTrap).
func RuleFor(r arm.SysReg) Rule { return rules[r] }

// Rules returns all registers with explicit NEVE rules in definition order
// (the order of the paper's tables), for cmd/sysregs and tests.
func Rules() []Rule {
	out := make([]Rule, 0, len(ordered))
	for _, r := range ordered {
		out = append(out, rules[r])
	}
	return out
}

// VNCROffset returns the deferred-access-page offset for r, or -1 if r is
// not stored in the page.
func VNCROffset(r arm.SysReg) int {
	if rules[r].Reg == arm.RegInvalid {
		return -1
	}
	return rules[r].VNCROffset
}

// RegAtOffset is the inverse of VNCROffset: the register stored at a
// deferred-access-page offset. The layout is dense, so every 8-byte slot
// below PageBytes() names a register; ok is false outside it. Fault
// injection uses this to corrupt a drawn page slot through the page's
// backing store rather than raw memory.
func RegAtOffset(off int) (arm.SysReg, bool) {
	for _, r := range ordered {
		if rules[r].VNCROffset == off {
			return r, true
		}
	}
	return arm.RegInvalid, false
}

func addRule(r arm.SysReg, class Class, t Treatment, redirect arm.SysReg, inPage bool) {
	if rules[r].Reg != arm.RegInvalid {
		panic("core: duplicate NEVE rule for " + r.String())
	}
	off := -1
	if inPage {
		off = nextOff
		nextOff += 8
	}
	rules[r] = Rule{Reg: r, Class: class, Treatment: t, Redirect: redirect, VNCROffset: off}
	ordered = append(ordered, r)
}

func init() {
	vncr := func(class Class, regs ...arm.SysReg) {
		for _, r := range regs {
			addRule(r, class, TreatVNCR, arm.RegInvalid, true)
		}
	}
	redirect := func(class Class, pairs ...[2]arm.SysReg) {
		for _, p := range pairs {
			addRule(p[0], class, TreatRedirect, p[1], false)
		}
	}
	trapWrite := func(class Class, regs ...arm.SysReg) {
		for _, r := range regs {
			addRule(r, class, TreatTrapOnWrite, arm.RegInvalid, true)
		}
	}

	// Table 3: VM system registers, rewritten to the deferred access page.
	vncr(ClassVMTrapControl,
		arm.HACR_EL2, arm.HCR_EL2, arm.HPFAR_EL2, arm.HSTR_EL2,
		arm.VMPIDR_EL2, arm.VNCR_EL2, arm.VPIDR_EL2, arm.VTCR_EL2,
		arm.VTTBR_EL2)
	vncr(ClassVMExecControl,
		arm.AFSR0_EL1, arm.AFSR1_EL1, arm.AMAIR_EL1, arm.CONTEXTIDR_EL1,
		arm.CPACR_EL1, arm.ELR_EL1, arm.ESR_EL1, arm.FAR_EL1,
		arm.MAIR_EL1, arm.SCTLR_EL1, arm.SP_EL1, arm.SPSR_EL1,
		arm.TCR_EL1, arm.TTBR0_EL1, arm.TTBR1_EL1, arm.VBAR_EL1)
	vncr(ClassThreadID, arm.TPIDR_EL2)
	// Additional VNCR-mapped VM context per the final ARMv8.4 FEAT_NV2
	// specification (the paper's Table 3 omits these for space).
	vncr(ClassVMExtra,
		arm.PAR_EL1, arm.TPIDR_EL1, arm.CNTKCTL_EL1, arm.ACTLR_EL1,
		arm.CSSELR_EL1)

	// Table 4: hypervisor control registers.
	redirect(ClassHypRedirect,
		[2]arm.SysReg{arm.AFSR0_EL2, arm.AFSR0_EL1},
		[2]arm.SysReg{arm.AFSR1_EL2, arm.AFSR1_EL1},
		[2]arm.SysReg{arm.AMAIR_EL2, arm.AMAIR_EL1},
		[2]arm.SysReg{arm.ELR_EL2, arm.ELR_EL1},
		[2]arm.SysReg{arm.ESR_EL2, arm.ESR_EL1},
		[2]arm.SysReg{arm.FAR_EL2, arm.FAR_EL1},
		[2]arm.SysReg{arm.SPSR_EL2, arm.SPSR_EL1},
		[2]arm.SysReg{arm.MAIR_EL2, arm.MAIR_EL1},
		[2]arm.SysReg{arm.SCTLR_EL2, arm.SCTLR_EL1},
		[2]arm.SysReg{arm.VBAR_EL2, arm.VBAR_EL1},
	)
	redirect(ClassHypRedirectVHE,
		[2]arm.SysReg{arm.CONTEXTIDR_EL2, arm.CONTEXTIDR_EL1},
		[2]arm.SysReg{arm.TTBR1_EL2, arm.TTBR1_EL1},
	)
	trapWrite(ClassHypTrapOnWrite,
		arm.CNTHCTL_EL2, arm.CNTVOFF_EL2, arm.CPTR_EL2, arm.MDCR_EL2)
	addRule(arm.TCR_EL2, ClassHypRedirectOrTrap, TreatRedirectOrTrap, arm.TCR_EL1, true)
	addRule(arm.TTBR0_EL2, ClassHypRedirectOrTrap, TreatRedirectOrTrap, arm.TTBR0_EL1, true)

	// Table 5: GIC hypervisor control interface: cached copies for all,
	// trapping on writes so the host hypervisor can sanitize and shadow
	// the payloads (Section 4, interrupt virtualization).
	gic := []arm.SysReg{
		arm.ICH_HCR_EL2, arm.ICH_VTR_EL2, arm.ICH_VMCR_EL2,
		arm.ICH_MISR_EL2, arm.ICH_EISR_EL2, arm.ICH_ELRSR_EL2,
	}
	for i := 0; i < 4; i++ {
		gic = append(gic, arm.ICH_AP0R0_EL2+arm.SysReg(i))
	}
	for i := 0; i < 4; i++ {
		gic = append(gic, arm.ICH_AP1R0_EL2+arm.SysReg(i))
	}
	for i := 0; i < 16; i++ {
		gic = append(gic, arm.ICH_LR0_EL2+arm.SysReg(i))
	}
	trapWrite(ClassGICHyp, gic...)

	// Section 6.1, closing paragraph: PMU registers defer like VM system
	// registers; the debug control register uses a cached copy; the EL2
	// timers always trap because reads must see hardware-updated values.
	vncr(ClassDebugPMU, arm.PMUSERENR_EL0, arm.PMSELR_EL0)
	trapWrite(ClassDebugPMU, arm.MDSCR_EL1)
	for _, r := range []arm.SysReg{
		arm.CNTHP_CTL_EL2, arm.CNTHP_CVAL_EL2,
		arm.CNTHV_CTL_EL2, arm.CNTHV_CVAL_EL2,
	} {
		addRule(r, ClassTimer, TreatTrap, arm.RegInvalid, false)
	}

	// Precompute the alias-followed rule for every register: the table is
	// immutable after init, so the hot lookup never chases aliases again.
	for _, r := range arm.AllRegs() {
		rule := rules[r]
		if rule.Reg == arm.RegInvalid {
			if a := arm.Info(r).Alias; a != arm.RegInvalid {
				rule = rules[a]
			}
		}
		resolved[r] = rule
	}
}

package core

import (
	"github.com/nevesim/neve/internal/arm"
	"github.com/nevesim/neve/internal/mem"
)

// VNCR_EL2 register fields (paper Table 2). The register is managed
// exclusively by the host hypervisor.
const (
	// VNCREnable completely enables or disables NEVE (bit[0]).
	VNCREnable uint64 = 1 << 0
	// VNCRBAddrMask extracts BADDR, the physical base address of the
	// deferred access page (bits[52:12]). The architecture mandates a
	// page-aligned address so no alignment checks or translation faults
	// are needed on the redirected accesses (Section 6.3).
	VNCRBAddrMask uint64 = ((1 << 53) - 1) &^ ((1 << 12) - 1)
)

// MakeVNCR builds a VNCR_EL2 value from a page-aligned deferred access page
// base address.
func MakeVNCR(baddr mem.Addr, enable bool) uint64 {
	if uint64(baddr)&(mem.PageSize-1) != 0 {
		panic("core: VNCR_EL2.BADDR must be page aligned")
	}
	v := uint64(baddr) & VNCRBAddrMask
	if enable {
		v |= VNCREnable
	}
	return v
}

// BAddr extracts the deferred access page base address from a VNCR_EL2
// value.
func BAddr(vncr uint64) mem.Addr { return mem.Addr(vncr & VNCRBAddrMask) }

// Enabled reports whether a VNCR_EL2 value has NEVE enabled.
func Enabled(vncr uint64) bool { return vncr&VNCREnable != 0 }

// Page is a view of a deferred access page at a fixed base address, used by
// hypervisor software to read and populate the architecturally defined
// register slots.
type Page struct {
	Base mem.Addr
}

// Slot returns the physical address of r's slot in the page. It panics if
// r is not stored in the page; callers use VNCROffset to test.
func (p Page) Slot(r arm.SysReg) mem.Addr {
	off := resolveRule(r).VNCROffset
	if off < 0 {
		panic("core: register " + r.String() + " has no deferred access page slot")
	}
	return p.Base + mem.Addr(off)
}

// Has reports whether r has a slot in the deferred access page.
func (p Page) Has(r arm.SysReg) bool { return resolveRule(r).VNCROffset >= 0 }

// resolveRule returns the NEVE rule for r, following *_EL12/*_EL02 alias
// encodings to their underlying register: a VHE guest hypervisor's
// SCTLR_EL12 access is a VM-system-register access to SCTLR_EL1. The
// alias chase is precomputed at init, so this is a single array load on
// the per-access hot path.
func resolveRule(r arm.SysReg) Rule { return resolved[r] }

// ResolvedRule is the exported form of resolveRule for tests and tools.
func ResolvedRule(r arm.SysReg) Rule { return resolveRule(r) }

// PageBytes is the number of bytes of the deferred access page the layout
// actually uses; the remainder is reserved.
func PageBytes() int { return nextOff }

package core

import (
	"testing"

	"github.com/nevesim/neve/internal/arm"
	"github.com/nevesim/neve/internal/mem"
	"github.com/nevesim/neve/internal/trace"
)

// TestEveryRegisterAccessResolves sweeps every modeled system register
// through a deprivileged guest hypervisor access in both directions, under
// both guest designs: no access may panic, and each must either be handled
// by NEVE or trap — a totality property over the whole classification.
func TestEveryRegisterAccessResolves(t *testing.T) {
	for _, nv1 := range []bool{false, true} {
		m := mem.New(0)
		c := arm.NewCPU(0, m, arm.FeaturesV84())
		handled := 0
		c.Vector = handlerFunc(func(cc *arm.CPU, e *arm.Exception) uint64 {
			handled++
			return 0
		})
		c.Trace = trace.NewCollector(false)
		c.NV2 = Engine{}
		page := Page{Base: m.AllocPage()}
		c.SetReg(arm.VNCR_EL2, MakeVNCR(page.Base, true))
		hcr := arm.HCRNV | arm.HCRNV2
		if nv1 {
			hcr |= arm.HCRNV1
		}
		c.SetReg(arm.HCR_EL2, hcr)

		c.RunGuest(1, func() {
			for _, r := range arm.AllRegs() {
				info := arm.Info(r)
				if info.Device && info.Min <= arm.EL1 && !info.EL2Access && info.Alias == arm.RegInvalid {
					// EL0/EL1 device registers (timers, ICC) have their own
					// device semantics tests.
					continue
				}
				if r == arm.VNCR_EL2 {
					continue // owned by the host; the engine defers it, tested elsewhere
				}
				if !info.WriteOnly {
					_ = c.MRS(r)
				}
				if !info.ReadOnly {
					c.MSR(r, 0x42)
				}
			}
		})
		if handled == 0 {
			t.Errorf("nv1=%v: nothing trapped — trap-on-write registers must still trap", nv1)
		}
	}
}

type handlerFunc func(c *arm.CPU, e *arm.Exception) uint64

func (f handlerFunc) HandleTrap(c *arm.CPU, e *arm.Exception) uint64 { return f(c, e) }

func TestAblationFlagsForceTraps(t *testing.T) {
	run := func(e Engine) (traps int) {
		m := mem.New(0)
		c := arm.NewCPU(0, m, arm.FeaturesV84())
		c.Vector = handlerFunc(func(cc *arm.CPU, ex *arm.Exception) uint64 { traps++; return 0 })
		c.NV2 = e
		page := Page{Base: m.AllocPage()}
		c.SetReg(arm.VNCR_EL2, MakeVNCR(page.Base, true))
		c.SetReg(arm.HCR_EL2, arm.HCRNV|arm.HCRNV2)
		c.RunGuest(1, func() {
			c.MSR(arm.VTTBR_EL2, 1) // defer class
			c.MSR(arm.VBAR_EL2, 2)  // redirect class
			_ = c.MRS(arm.CPTR_EL2) // cached-copy class
		})
		return traps
	}
	if got := run(Engine{}); got != 0 {
		t.Errorf("full NEVE trapped %d times, want 0", got)
	}
	if got := run(Engine{DisableDefer: true}); got != 1 {
		t.Errorf("defer-disabled trapped %d times, want 1 (the VTTBR write)", got)
	}
	if got := run(Engine{DisableRedirect: true}); got != 1 {
		t.Errorf("redirect-disabled trapped %d times, want 1 (the VBAR write)", got)
	}
	if got := run(Engine{DisableCached: true}); got != 1 {
		t.Errorf("cached-disabled trapped %d times, want 1 (the CPTR read)", got)
	}
	all := Engine{DisableDefer: true, DisableRedirect: true, DisableCached: true}
	if got := run(all); got != 3 {
		t.Errorf("all-disabled trapped %d times, want 3 (ARMv8.3 behavior)", got)
	}
}

func TestPageSlotPanicsWithoutSlot(t *testing.T) {
	p := Page{Base: 0x1000}
	defer func() {
		if recover() == nil {
			t.Fatal("Slot of unmapped register did not panic")
		}
	}()
	p.Slot(arm.CNTHP_CTL_EL2) // always-trap: no page slot
}

func TestPageHas(t *testing.T) {
	p := Page{Base: 0x1000}
	if !p.Has(arm.VTTBR_EL2) || !p.Has(arm.SCTLR_EL12) {
		t.Error("page slots missing for deferred registers")
	}
	if p.Has(arm.CNTHV_CTL_EL2) {
		t.Error("always-trap register claims a slot")
	}
}

func TestTreatmentStrings(t *testing.T) {
	for tr, want := range map[Treatment]string{
		TreatVNCR: "deferred-page", TreatRedirect: "redirect-el1",
		TreatTrapOnWrite: "trap-on-write", TreatTrap: "trap",
		TreatRedirectOrTrap: "redirect-or-trap",
	} {
		if tr.String() != want {
			t.Errorf("%d.String() = %q", int(tr), tr.String())
		}
	}
	for _, cl := range []Class{ClassVMTrapControl, ClassGICHyp, ClassTimer, ClassDebugPMU} {
		if cl.String() == "unclassified" {
			t.Errorf("class %d unnamed", int(cl))
		}
	}
}

package core

import (
	"testing"

	"github.com/nevesim/neve/internal/arm"
	"github.com/nevesim/neve/internal/mem"
	"github.com/nevesim/neve/internal/trace"
)

type countHandler struct{ traps []arm.Exception }

func (h *countHandler) HandleTrap(c *arm.CPU, e *arm.Exception) uint64 {
	h.traps = append(h.traps, *e)
	return 0
}

// newGuestHypCPU builds a v8.4 CPU deprivileged to EL1 as a guest
// hypervisor with NEVE enabled and a deferred access page allocated.
func newGuestHypCPU(t *testing.T, extraHCR uint64) (*arm.CPU, *countHandler, Page) {
	t.Helper()
	m := mem.New(0)
	c := arm.NewCPU(0, m, arm.FeaturesV84())
	h := &countHandler{}
	c.Vector = h
	c.Trace = trace.NewCollector(false)
	c.NV2 = Engine{}
	page := Page{Base: m.AllocPage()}
	c.SetReg(arm.VNCR_EL2, MakeVNCR(page.Base, true))
	c.SetReg(arm.HCR_EL2, arm.HCRNV|arm.HCRNV2|extraHCR)
	// Deprivilege: run subsequent accesses from EL1 as a guest hypervisor.
	c.RunGuest(1, func() {})
	// RunGuest returns to EL2; tests instead drive guest code through it.
	return c, h, page
}

// atEL1 runs fn as deprivileged guest hypervisor code.
func atEL1(c *arm.CPU, fn func()) { c.RunGuest(1, fn) }

func TestVNCRFieldRoundTrip(t *testing.T) {
	v := MakeVNCR(0x40000, true)
	if !Enabled(v) {
		t.Fatal("Enable bit lost")
	}
	if BAddr(v) != 0x40000 {
		t.Fatalf("BADDR = %#x", uint64(BAddr(v)))
	}
	if Enabled(MakeVNCR(0x40000, false)) {
		t.Fatal("disabled VNCR reports enabled")
	}
}

func TestMakeVNCRRequiresAlignment(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned BADDR accepted")
		}
	}()
	MakeVNCR(0x40008, true)
}

func TestVMRegisterAccessGoesToPage(t *testing.T) {
	c, h, page := newGuestHypCPU(t, arm.HCRNV1)
	atEL1(c, func() {
		c.MSR(arm.VTTBR_EL2, 0x1111) // EL2 VM trap control register
		c.MSR(arm.SCTLR_EL1, 0x2222) // EL1 VM execution control (via NV1)
		c.MSR(arm.TPIDR_EL2, 0x3333) // thread ID register
		if got := c.MRS(arm.VTTBR_EL2); got != 0x1111 {
			t.Errorf("VTTBR_EL2 readback = %#x", got)
		}
	})
	if len(h.traps) != 0 {
		t.Fatalf("traps = %+v, want none", h.traps)
	}
	if got := c.Mem.MustRead64(page.Slot(arm.VTTBR_EL2)); got != 0x1111 {
		t.Fatalf("page slot VTTBR = %#x", got)
	}
	if got := c.Mem.MustRead64(page.Slot(arm.SCTLR_EL1)); got != 0x2222 {
		t.Fatalf("page slot SCTLR_EL1 = %#x", got)
	}
	if got := c.Mem.MustRead64(page.Slot(arm.TPIDR_EL2)); got != 0x3333 {
		t.Fatalf("page slot TPIDR_EL2 = %#x", got)
	}
	// The hardware registers are untouched: the accesses were deferred.
	if c.Reg(arm.VTTBR_EL2) != 0 || c.Reg(arm.SCTLR_EL1) != 0 {
		t.Fatal("deferred access leaked into hardware register")
	}
}

func TestHypControlRedirectsToEL1(t *testing.T) {
	c, h, _ := newGuestHypCPU(t, 0)
	atEL1(c, func() {
		c.MSR(arm.VBAR_EL2, 0xffff000012340000)
		if got := c.MRS(arm.VBAR_EL2); got != 0xffff000012340000 {
			t.Errorf("VBAR_EL2 readback = %#x", got)
		}
	})
	if len(h.traps) != 0 {
		t.Fatalf("traps = %+v, want none", h.traps)
	}
	// Redirected into the hardware EL1 register: exceptions to the guest
	// hypervisor (really at EL1) will use the right vector (Section 6).
	if got := c.Reg(arm.VBAR_EL1); got != 0xffff000012340000 {
		t.Fatalf("VBAR_EL1 = %#x", got)
	}
}

func TestTrapOnWriteCachedRead(t *testing.T) {
	c, h, page := newGuestHypCPU(t, 0)
	// Host hypervisor caches the current value in the page.
	c.Mem.MustWrite64(page.Slot(arm.CPTR_EL2), 0x33ff)
	atEL1(c, func() {
		if got := c.MRS(arm.CPTR_EL2); got != 0x33ff {
			t.Errorf("cached CPTR_EL2 read = %#x", got)
		}
	})
	if len(h.traps) != 0 {
		t.Fatalf("read trapped: %+v", h.traps)
	}
	atEL1(c, func() { c.MSR(arm.CPTR_EL2, 0x0) })
	if len(h.traps) != 1 || h.traps[0].Reg != arm.CPTR_EL2 || !h.traps[0].Write {
		t.Fatalf("write traps = %+v", h.traps)
	}
}

func TestGICRegistersTrapOnWriteOnly(t *testing.T) {
	c, h, page := newGuestHypCPU(t, 0)
	c.Mem.MustWrite64(page.Slot(arm.ICH_VTR_EL2), 0xf)
	atEL1(c, func() {
		if got := c.MRS(arm.ICH_VTR_EL2); got != 0xf {
			t.Errorf("ICH_VTR read = %#x", got)
		}
		if got := c.MRS(arm.ICH_LR0_EL2); got != 0 {
			t.Errorf("ICH_LR0 read = %#x", got)
		}
	})
	if len(h.traps) != 0 {
		t.Fatalf("GIC reads trapped: %+v", h.traps)
	}
	atEL1(c, func() { c.MSR(arm.ICH_LR0_EL2, arm.MakeLR(40, -1)) })
	if len(h.traps) != 1 || h.traps[0].Reg != arm.ICH_LR0_EL2 {
		t.Fatalf("LR write traps = %+v", h.traps)
	}
}

func TestTCRRedirectOrTrapFollowsVirtualE2H(t *testing.T) {
	c, h, page := newGuestHypCPU(t, 0)
	// Non-VHE guest hypervisor (virtual HCR.E2H clear in the page):
	// TCR_EL2 formats differ from TCR_EL1, so writes trap (Table 4).
	atEL1(c, func() { c.MSR(arm.TCR_EL2, 0x1) })
	if len(h.traps) != 1 {
		t.Fatalf("non-VHE TCR_EL2 write traps = %+v", h.traps)
	}
	h.traps = nil
	// VHE guest hypervisor: virtual E2H set, formats identical, redirect.
	c.Mem.MustWrite64(page.Slot(arm.HCR_EL2), arm.HCRE2H)
	atEL1(c, func() { c.MSR(arm.TCR_EL2, 0x2) })
	if len(h.traps) != 0 {
		t.Fatalf("VHE TCR_EL2 write trapped: %+v", h.traps)
	}
	if got := c.Reg(arm.TCR_EL1); got != 0x2 {
		t.Fatalf("TCR_EL1 = %#x", got)
	}
}

func TestEL12AliasUsesUnderlyingRule(t *testing.T) {
	// A VHE guest hypervisor accesses its VM's EL1 state via *_EL12
	// instructions; those are VM system register accesses and defer.
	c, h, page := newGuestHypCPU(t, 0)
	atEL1(c, func() { c.MSR(arm.SCTLR_EL12, 0xabcd) })
	if len(h.traps) != 0 {
		t.Fatalf("EL12 access trapped: %+v", h.traps)
	}
	if got := c.Mem.MustRead64(page.Slot(arm.SCTLR_EL1)); got != 0xabcd {
		t.Fatalf("page slot = %#x", got)
	}
}

func TestEL2TimerAlwaysTraps(t *testing.T) {
	c, h, _ := newGuestHypCPU(t, 0)
	atEL1(c, func() {
		c.MRS(arm.CNTHP_CTL_EL2)
		c.MSR(arm.CNTHP_CTL_EL2, 1)
	})
	if len(h.traps) != 2 {
		t.Fatalf("timer traps = %d, want 2", len(h.traps))
	}
}

func TestDisabledVNCRTrapsEverything(t *testing.T) {
	c, h, page := newGuestHypCPU(t, 0)
	c.SetReg(arm.VNCR_EL2, MakeVNCR(page.Base, false))
	atEL1(c, func() { c.MSR(arm.VTTBR_EL2, 1) })
	if len(h.traps) != 1 {
		t.Fatalf("traps with NEVE disabled = %d, want 1", len(h.traps))
	}
}

func TestVNCRRegisterItselfIsDeferred(t *testing.T) {
	// Recursive virtualization (Section 6.2): the L1 guest hypervisor's
	// VNCR_EL2 accesses defer to its own deferred access page.
	c, h, page := newGuestHypCPU(t, 0)
	atEL1(c, func() { c.MSR(arm.VNCR_EL2, MakeVNCR(0x777000, true)) })
	if len(h.traps) != 0 {
		t.Fatalf("VNCR_EL2 access trapped: %+v", h.traps)
	}
	if got := c.Mem.MustRead64(page.Slot(arm.VNCR_EL2)); got != MakeVNCR(0x777000, true) {
		t.Fatalf("deferred VNCR_EL2 = %#x", got)
	}
	// The hardware VNCR_EL2 (owned by the host) is unchanged.
	if got := c.Reg(arm.VNCR_EL2); got != MakeVNCR(page.Base, true) {
		t.Fatalf("hardware VNCR_EL2 clobbered: %#x", got)
	}
}

func TestClassificationTableCounts(t *testing.T) {
	byClass := map[Class]int{}
	for _, r := range Rules() {
		byClass[r.Class]++
	}
	// Table 3 as printed: 10 VM trap control (the paper lists TPIDR_EL2
	// both there and under Thread ID; we store it once), 16 VM execution
	// control, 1 thread ID.
	if byClass[ClassVMTrapControl] != 9 {
		t.Errorf("VM trap control = %d, want 9 (+TPIDR_EL2 under Thread ID)", byClass[ClassVMTrapControl])
	}
	if byClass[ClassVMExecControl] != 16 {
		t.Errorf("VM execution control = %d, want 16", byClass[ClassVMExecControl])
	}
	if byClass[ClassThreadID] != 1 {
		t.Errorf("thread ID = %d, want 1", byClass[ClassThreadID])
	}
	// Table 4: 10 redirect + 2 VHE redirect + 4 trap-on-write + 2
	// redirect-or-trap = 18 hypervisor control registers (the paper's "17"
	// counts TCR/TTBR0 as one row each but we count both).
	if byClass[ClassHypRedirect] != 10 {
		t.Errorf("redirect = %d, want 10", byClass[ClassHypRedirect])
	}
	if byClass[ClassHypRedirectVHE] != 2 {
		t.Errorf("redirect VHE = %d, want 2", byClass[ClassHypRedirectVHE])
	}
	if byClass[ClassHypTrapOnWrite] != 4 {
		t.Errorf("trap-on-write = %d, want 4", byClass[ClassHypTrapOnWrite])
	}
	if byClass[ClassHypRedirectOrTrap] != 2 {
		t.Errorf("redirect-or-trap = %d, want 2", byClass[ClassHypRedirectOrTrap])
	}
	// Table 5: 6 status/control + 8 active-priority + 16 list registers.
	if byClass[ClassGICHyp] != 30 {
		t.Errorf("GIC hyp control = %d, want 30", byClass[ClassGICHyp])
	}
}

func TestVNCROffsetsUniqueAndAligned(t *testing.T) {
	seen := map[int]arm.SysReg{}
	for _, rule := range Rules() {
		if rule.VNCROffset < 0 {
			continue
		}
		if rule.VNCROffset%8 != 0 {
			t.Errorf("%s offset %d not 8-byte aligned", rule.Reg, rule.VNCROffset)
		}
		if prev, dup := seen[rule.VNCROffset]; dup {
			t.Errorf("offset %d shared by %s and %s", rule.VNCROffset, prev, rule.Reg)
		}
		seen[rule.VNCROffset] = rule.Reg
	}
	if PageBytes() > mem.PageSize {
		t.Fatalf("layout uses %d bytes, exceeds one page", PageBytes())
	}
	if PageBytes() == 0 {
		t.Fatal("empty layout")
	}
}

func TestRedirectTargetsShareFormatClass(t *testing.T) {
	for _, rule := range Rules() {
		switch rule.Treatment {
		case TreatRedirect, TreatRedirectOrTrap:
			if rule.Redirect == arm.RegInvalid {
				t.Errorf("%s: redirect treatment with no target", rule.Reg)
			}
			if arm.Info(rule.Redirect).Min != arm.EL1 {
				t.Errorf("%s redirects to %s which is not an EL1 register", rule.Reg, rule.Redirect)
			}
		case TreatVNCR, TreatTrapOnWrite:
			if rule.VNCROffset < 0 {
				t.Errorf("%s: page treatment with no slot", rule.Reg)
			}
		}
	}
}

func TestDeferredAccessCostCheaperThanTrap(t *testing.T) {
	// The entire point of NEVE: a deferred access must cost far less than
	// a trap round trip.
	costs := arm.DefaultCosts()
	if costs.SysRegVNCR*10 > costs.TrapEnter+costs.TrapReturn {
		t.Fatalf("deferred access (%d) not an order of magnitude cheaper than trap (%d)",
			costs.SysRegVNCR, costs.TrapEnter+costs.TrapReturn)
	}
}

package core

import "github.com/nevesim/neve/internal/arm"

// Engine is the NEVE hardware logic: it is consulted by the CPU model for
// every virtual-EL2 system register access that ARMv8.3 would trap, and
// either performs the access (rewritten to the deferred access page or
// redirected to an EL1 register) or declines, letting the trap proceed.
//
// All run-time configuration lives in the hardware VNCR_EL2 register of
// the CPU being accessed, exactly as in the proposed architecture. The
// Disable* fields selectively turn off NEVE's three mechanisms
// (Section 6: deferral to memory, register redirection, cached copies)
// for the ablation experiments; a zero Engine is full NEVE.
type Engine struct {
	// DisableDefer turns off the rewriting of VM system register accesses
	// to the deferred access page (Table 3).
	DisableDefer bool
	// DisableRedirect turns off EL2-to-EL1 register redirection (Table 4).
	DisableRedirect bool
	// DisableCached turns off cached-copy reads of trap-on-write
	// registers (Tables 4 and 5).
	DisableCached bool
}

var _ arm.NV2Engine = Engine{}

// Access implements arm.NV2Engine.
func (e Engine) Access(c *arm.CPU, r arm.SysReg, write bool, val *uint64) arm.NV2Outcome {
	vncr := c.Reg(arm.VNCR_EL2)
	if !Enabled(vncr) {
		return arm.NV2Trap
	}
	rule := resolveRule(r)
	switch rule.Treatment {
	case TreatVNCR:
		if e.DisableDefer {
			return arm.NV2Trap
		}
		return pageAccess(c, rule, write, val)
	case TreatRedirect:
		if e.DisableRedirect {
			return arm.NV2Trap
		}
		return redirectAccess(c, rule, write, val)
	case TreatTrapOnWrite:
		if write || e.DisableCached {
			return arm.NV2Trap
		}
		return pageAccess(c, rule, false, val)
	case TreatRedirectOrTrap:
		// TCR_EL2 and TTBR0_EL2 share the EL1 format only under VHE
		// (Table 4). The guest hypervisor's virtual HCR_EL2 is itself
		// stored in the deferred access page, so the hardware can read its
		// E2H bit there to pick the behavior.
		vhcr := peekVHCR(c, vncr)
		if vhcr&arm.HCRE2H != 0 {
			if e.DisableRedirect {
				return arm.NV2Trap
			}
			return redirectAccess(c, rule, write, val)
		}
		if write || e.DisableCached {
			return arm.NV2Trap
		}
		return pageAccess(c, rule, false, val)
	default:
		return arm.NV2Trap
	}
}

// peekVHCR reads the virtual HCR_EL2 slot of the active deferred access
// page: through the registered tracked store when the hypervisor installed
// one (the read reports to the trace-JIT tap like any other saved-context
// access), falling back to raw memory otherwise. The peek models the
// hardware's internal slot fetch and carries no extra cycle charge — the
// access it steers pays the usual cost.
func peekVHCR(c *arm.CPU, vncr uint64) uint64 {
	base := BAddr(vncr)
	if c.NV2Pages != nil {
		if st := c.NV2Pages(base); st != nil {
			return st.Get(arm.HCR_EL2)
		}
	}
	return c.Mem.MustRead64(Page{Base: base}.Slot(arm.HCR_EL2))
}

func pageAccess(c *arm.CPU, rule Rule, write bool, val *uint64) arm.NV2Outcome {
	base := BAddr(c.Reg(arm.VNCR_EL2))
	if c.NV2Pages != nil {
		if st := c.NV2Pages(base); st != nil {
			// The page is backed by a registered tracked store: the access
			// reports its read/write set to the trace-JIT engine through the
			// store's tap, so deferred traffic is replayable instead of a
			// poison source.
			if write {
				st.Set(rule.Reg, *val)
			} else {
				*val = st.Get(rule.Reg)
			}
			c.AddCycles(c.Cost.SysRegVNCR)
			return arm.NV2Memory
		}
	}
	// An unregistered page lives only in raw memory, which is outside the
	// trace-JIT replay guard: poison any active recording.
	c.JITPoison()
	addr := Page{Base: base}.Slot(rule.Reg)
	if write {
		c.Mem.MustWrite64(addr, *val)
	} else {
		*val = c.Mem.MustRead64(addr)
	}
	c.AddCycles(c.Cost.SysRegVNCR)
	return arm.NV2Memory
}

func redirectAccess(c *arm.CPU, rule Rule, write bool, val *uint64) arm.NV2Outcome {
	if write {
		c.SetReg(rule.Redirect, *val)
	} else {
		*val = c.Reg(rule.Redirect)
	}
	c.AddCycles(c.Cost.SysRegRedirect)
	return arm.NV2Redirected
}

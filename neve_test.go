package neve

import (
	"strings"
	"testing"
)

// Facade tests: the public API surface works end to end.

func TestPublicStacks(t *testing.T) {
	vm := NewARMVMStack(ARMStackOptions{})
	vm.RunGuest(0, func(g *GuestCtx) { g.Hypercall() })

	nested := NewARMNestedStack(ARMStackOptions{GuestNEVE: true})
	nested.RunGuest(0, func(g *GuestCtx) { g.Hypercall() })
	if nested.M.Trace.Total() == 0 {
		t.Error("nested stack recorded no traps")
	}

	rec := NewARMRecursiveStack(ARMStackOptions{GuestNEVE: true})
	rec.RunGuest(0, func(g *GuestCtx) { g.Hypercall() })

	x := NewX86Stack(X86StackOptions{Nested: true, Shadowing: true})
	x.RunGuest(0, func(g *X86GuestCtx) { g.Hypercall() })
}

func TestPublicRunMicroTable7Row(t *testing.T) {
	want := map[ConfigID]uint64{
		ARMNested: 126, ARMNestedVHE: 82,
		NEVENested: 15, NEVENestedVHE: 15, X86Nested: 5,
	}
	for cfg, traps := range want {
		_, got := RunMicro(cfg, Hypercall)
		if got != traps {
			t.Errorf("%s hypercall traps = %d, want %d", cfg, got, traps)
		}
	}
}

func TestPublicFeatureLevels(t *testing.T) {
	if FeaturesV80().NV || !FeaturesV84().NV2 {
		t.Error("feature constructors wrong")
	}
}

func TestPublicNEVERules(t *testing.T) {
	rules := NEVERules()
	if len(rules) < 60 {
		t.Fatalf("NEVERules = %d entries, want the full Tables 3-5 surface", len(rules))
	}
}

func TestPublicProfilesAndRunApp(t *testing.T) {
	ps := Profiles()
	if len(ps) != 10 {
		t.Fatalf("Profiles = %d, want 10", len(ps))
	}
	overhead, res := RunApp(NEVENested, ps[0]) // kernbench: cheap
	if overhead < 1.0 || overhead > 2.0 {
		t.Errorf("kernbench NEVE overhead = %.2f", overhead)
	}
	if res.Cycles == 0 {
		t.Error("no cycles measured")
	}
}

func TestPublicFormatters(t *testing.T) {
	micro := []MicroResult{{Op: Hypercall, Config: ARMNested, Cycles: 419531, Traps: 126}}
	if !strings.Contains(FormatTable1(micro), "Table 1") {
		t.Error("FormatTable1 broken")
	}
	if !strings.Contains(FormatTable7(micro), "126") {
		t.Error("FormatTable7 broken")
	}
}

func TestPublicTableRegeneration(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	micro := RunAllMicro()
	if len(micro) != 4*len([]ConfigID{ARMVM, ARMNested, ARMNestedVHE, NEVENested, NEVENestedVHE, X86VM, X86Nested}) {
		t.Fatalf("RunAllMicro = %d cells", len(micro))
	}
	if s := FormatTable6(micro); !strings.Contains(s, "Table 6") {
		t.Error("FormatTable6 broken")
	}
	fig := RunFigure2()
	if s := FormatFigure2(fig); !strings.Contains(s, "Memcached") {
		t.Error("FormatFigure2 broken")
	}
}

func TestPublicAblations(t *testing.T) {
	ab := RunAblation(false)
	if len(ab) != 6 {
		t.Fatalf("RunAblation = %d variants", len(ab))
	}
	ov := RunOptimizedVHE()
	if len(ov) != 3 {
		t.Fatalf("RunOptimizedVHE = %d rows", len(ov))
	}
}

package main

import (
	"bytes"
	"strings"
	"testing"

	"github.com/nevesim/neve/internal/bench"
)

func report(suites []bench.SuiteStats, cells []bench.SMPCell) bench.Report {
	return bench.Report{Date: "2026-08-08", Parallelism: 4, Suites: suites, SMPCells: cells, TotalWallMS: 100}
}

// TestOneSidedSuites: suites present in only one report are listed as
// added/removed and never regress.
func TestOneSidedSuites(t *testing.T) {
	oldR := report([]bench.SuiteStats{
		{Name: "micro", WallMS: 100},
		{Name: "retired", WallMS: 50},
	}, nil)
	newR := report([]bench.SuiteStats{
		{Name: "micro", WallMS: 105},
		{Name: "fresh", WallMS: 70},
	}, nil)
	var out bytes.Buffer
	if diffReports(&out, oldR, newR, 10, 25, 15) {
		t.Fatalf("one-sided suites failed the diff:\n%s", out.String())
	}
	s := out.String()
	if !strings.Contains(s, "fresh") || !strings.Contains(s, "(new suite)") {
		t.Errorf("new suite not listed:\n%s", s)
	}
	if !strings.Contains(s, "retired") || !strings.Contains(s, "(suite removed)") {
		t.Errorf("removed suite not listed:\n%s", s)
	}
}

// TestRegressionStillFails: the lifecycle handling must not swallow a
// real wall-time regression in a shared suite.
func TestRegressionStillFails(t *testing.T) {
	oldR := report([]bench.SuiteStats{{Name: "micro", WallMS: 100}}, nil)
	newR := report([]bench.SuiteStats{{Name: "micro", WallMS: 150}}, nil)
	var out bytes.Buffer
	if !diffReports(&out, oldR, newR, 10, 25, 15) {
		t.Fatalf("50%% slowdown passed a 10%% threshold:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("regression not marked:\n%s", out.String())
	}
}

// TestOneSidedSMPSection: an SMP section present in only one report
// (sweep just added, or just retired) lists every cell instead of
// being skipped, and never fails the diff.
func TestOneSidedSMPSection(t *testing.T) {
	cells := []bench.SMPCell{
		{Config: "smp4", Profile: "kernbench", SpeedupX: 2.5},
		{Config: "smp8", Profile: "hackbench", SpeedupX: 3.1},
	}

	// Section only in the NEW report.
	var out bytes.Buffer
	if diffReports(&out, report(nil, nil), report(nil, cells), 10, 25, 15) {
		t.Fatalf("new-only SMP section failed the diff:\n%s", out.String())
	}
	if c := strings.Count(out.String(), "(new cell)"); c != 2 {
		t.Errorf("want 2 new-cell rows, got %d:\n%s", c, out.String())
	}

	// Section only in the OLD report.
	out.Reset()
	if diffReports(&out, report(nil, cells), report(nil, nil), 10, 25, 15) {
		t.Fatalf("old-only SMP section failed the diff:\n%s", out.String())
	}
	if c := strings.Count(out.String(), "(cell removed)"); c != 2 {
		t.Errorf("want 2 cell-removed rows, got %d:\n%s", c, out.String())
	}
}

// TestSMPCellMix: shared cells are judged on speedup while one-sided
// cells in the same section are listed.
func TestSMPCellMix(t *testing.T) {
	oldCells := []bench.SMPCell{
		{Config: "smp4", Profile: "kernbench", SpeedupX: 3.0},
		{Config: "smp4", Profile: "retired", SpeedupX: 2.0},
	}
	newCells := []bench.SMPCell{
		{Config: "smp4", Profile: "kernbench", SpeedupX: 1.0}, // 67% drop
		{Config: "smp4", Profile: "fresh", SpeedupX: 2.2},
	}
	var out bytes.Buffer
	if !diffReports(&out, report(nil, oldCells), report(nil, newCells), 10, 25, 15) {
		t.Fatalf("67%% speedup drop passed a 25%% threshold:\n%s", out.String())
	}
	s := out.String()
	if !strings.Contains(s, "REGRESSION") {
		t.Errorf("speedup regression not marked:\n%s", s)
	}
	if !strings.Contains(s, "(new cell)") || !strings.Contains(s, "(cell removed)") {
		t.Errorf("one-sided cells not listed:\n%s", s)
	}
}

// TestJITHitRateRegression: storm cells are judged on the JIT replay hit
// rate — a drop beyond -jit-threshold percentage points fails the diff
// even with the speedup unchanged, and cells that ran without the JIT on
// either side are skipped.
func TestJITHitRateRegression(t *testing.T) {
	oldCells := []bench.SMPCell{
		{Config: "smp8", Profile: "storm", SpeedupX: 2.0, JITHits: 60, JITMisses: 40}, // 60%
	}
	newCells := []bench.SMPCell{
		{Config: "smp8", Profile: "storm", SpeedupX: 2.0, JITHits: 10, JITMisses: 90}, // 10%
	}
	var out bytes.Buffer
	if !diffReports(&out, report(nil, oldCells), report(nil, newCells), 10, 25, 15) {
		t.Fatalf("50pp hit-rate drop passed a 15pp threshold:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "JIT-REGRESSION") {
		t.Errorf("hit-rate regression not marked:\n%s", out.String())
	}

	// Within threshold: passes, but the rates are still printed.
	newCells[0].JITHits, newCells[0].JITMisses = 55, 45 // 55%, 5pp drop
	out.Reset()
	if diffReports(&out, report(nil, oldCells), report(nil, newCells), 10, 25, 15) {
		t.Fatalf("5pp hit-rate drop failed a 15pp threshold:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "jit 60.0%->55.0%") {
		t.Errorf("hit rates not printed:\n%s", out.String())
	}

	// New side ran with the JIT off: no dispatches, no judgment.
	newCells[0].JITHits, newCells[0].JITMisses = 0, 0
	out.Reset()
	if diffReports(&out, report(nil, oldCells), report(nil, newCells), 10, 25, 15) {
		t.Fatalf("jit-off cell failed the hit-rate gate:\n%s", out.String())
	}

	// Non-storm profiles are never judged on hit rate, whatever the drop.
	oldCells[0].Profile, newCells[0].Profile = "kernbench", "kernbench"
	oldCells[0].JITHits, oldCells[0].JITMisses = 90, 10
	newCells[0].JITHits, newCells[0].JITMisses = 0, 100
	out.Reset()
	if diffReports(&out, report(nil, oldCells), report(nil, newCells), 10, 25, 15) {
		t.Fatalf("non-storm cell was judged on hit rate:\n%s", out.String())
	}
}

// Command benchdiff compares two BENCH_<date>.json performance reports
// (written by `nevesim bench -json`) and fails on wall-time regressions:
//
//	benchdiff [-threshold pct] [-smp-threshold pct] [-jit-threshold pp] OLD.json NEW.json
//
// For every suite present in both reports it prints old/new wall time and
// the relative change, and exits non-zero if any suite slowed down by
// more than -threshold percent (default 10). Suites named smp-* (the SMP
// scale-out sweep, written by `nevesim smp -json`) are judged on the
// sweep's parallel speedup instead — speedup_x is higher-is-better, and a
// cell regresses when its speedup drops by more than -smp-threshold
// percent (default 25: a parallel cell's scheduling rides on host core
// availability, so it is noisier than the deterministic single-vCPU
// suites); their wall times are printed informationally. Interrupt-storm
// cells (profiles storm and storm-burst) are additionally judged on their
// JIT replay hit rate, jit_hits/(jit_hits+jit_misses): the parameterized
// super-ops make storm traps replayable across rounds, and a hit rate
// that falls more than -jit-threshold percentage points below the old
// report's (default 15) fails the diff — the signature of a variant chain
// degenerating back into single-use recordings. Cells where either side
// ran without the JIT (zero dispatches) are skipped. Suites or SMP
// cells that appear in only one report — including a whole SMP section
// present on one side only — are listed as added/removed rows but never
// fail the diff, so adding or retiring a suite doesn't break CI.
// Throughput-only differences (cells/sec on a zero-wall suite,
// parallelism changes) are informational.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/nevesim/neve/internal/bench"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold pct] [-smp-threshold pct] [-jit-threshold pp] OLD.json NEW.json")
	os.Exit(2)
}

func load(path string) bench.Report {
	b, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	var r bench.Report
	if err := json.Unmarshal(b, &r); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", path, err)
		os.Exit(1)
	}
	return r
}

func bootMode(r bench.Report) string {
	if r.ColdBoot {
		return "cold-boot"
	}
	return "warm-boot"
}

func main() {
	threshold := flag.Float64("threshold", 10, "max tolerated per-suite wall-time regression, percent")
	smpThreshold := flag.Float64("smp-threshold", 25, "regression threshold for smp-* suites (parallel wall times are noisier)")
	jitThreshold := flag.Float64("jit-threshold", 15, "max tolerated JIT hit-rate drop for storm smp cells, percentage points")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() != 2 {
		usage()
	}
	oldR, newR := load(flag.Arg(0)), load(flag.Arg(1))

	fmt.Printf("old: %s (%s, %d workers, %s)\n", flag.Arg(0), oldR.Date, oldR.Parallelism, bootMode(oldR))
	fmt.Printf("new: %s (%s, %d workers, %s)\n", flag.Arg(1), newR.Date, newR.Parallelism, bootMode(newR))
	if oldR.ColdBoot != newR.ColdBoot {
		fmt.Println("note: boot modes differ; the delta includes the checkpoint cache itself")
	}

	if diffReports(os.Stdout, oldR, newR, *threshold, *smpThreshold, *jitThreshold) {
		fmt.Fprintf(os.Stderr, "benchdiff: regression above %.0f%% wall time (%.0f%% speedup drop for smp cells, %.0fpp JIT hit-rate drop for storm cells)\n", *threshold, *smpThreshold, *jitThreshold)
		os.Exit(1)
	}
}

// diffReports prints the suite and SMP-cell comparison to w and reports
// whether any regression crossed a threshold. Entries present in only
// one report are printed as added/removed rows and never regress — a
// suite's lifecycle is not a performance event.
// stormProfile reports whether an SMP cell's workload is one of the
// interrupt-storm mixes whose JIT hit rate the diff tracks.
func stormProfile(name string) bool {
	return name == "storm" || name == "storm-burst"
}

// hitRate returns a cell's JIT replay hit rate in percent, and whether the
// cell ran with the JIT at all (bailouts are deliberately excluded: a
// bailed dispatch re-records, which is the chain adapting, not failing).
func hitRate(c bench.SMPCell) (float64, bool) {
	total := c.JITHits + c.JITMisses
	if total == 0 {
		return 0, false
	}
	return float64(c.JITHits) / float64(total) * 100, true
}

func diffReports(w io.Writer, oldR, newR bench.Report, threshold, smpThreshold, jitThreshold float64) bool {
	oldSuites := make(map[string]bench.SuiteStats, len(oldR.Suites))
	for _, s := range oldR.Suites {
		oldSuites[s.Name] = s
	}

	fmt.Fprintf(w, "%-8s %12s %12s %9s\n", "suite", "old wall ms", "new wall ms", "delta")
	failed := false
	for _, n := range newR.Suites {
		o, ok := oldSuites[n.Name]
		if !ok {
			fmt.Fprintf(w, "%-8s %12s %12.1f %9s  (new suite)\n", n.Name, "-", n.WallMS, "-")
			continue
		}
		delete(oldSuites, n.Name)
		mark := ""
		var pct float64
		if strings.HasPrefix(n.Name, "smp-") {
			// smp-* suites are judged on speedup_x below, not wall time.
			if o.WallMS > 0 {
				pct = (n.WallMS - o.WallMS) / o.WallMS * 100
			}
			fmt.Fprintf(w, "%-8s %12.1f %12.1f %+8.1f%%  (info; judged on speedup)\n", n.Name, o.WallMS, n.WallMS, pct)
			continue
		}
		if o.WallMS > 0 {
			pct = (n.WallMS - o.WallMS) / o.WallMS * 100
			if pct > threshold {
				mark = "  REGRESSION"
				failed = true
			}
		} else if n.WallMS > 0 {
			// Old wall time rounded to zero: any measurable new time is an
			// unquantifiable slowdown, so only report it.
			mark = "  (old wall time was 0)"
		}
		fmt.Fprintf(w, "%-8s %12.1f %12.1f %+8.1f%%%s\n", n.Name, o.WallMS, n.WallMS, pct, mark)
	}
	// Suites left in the map appear only in the old report.
	for _, s := range oldR.Suites {
		if o, ok := oldSuites[s.Name]; ok {
			fmt.Fprintf(w, "%-8s %12.1f %12s %9s  (suite removed)\n", o.Name, o.WallMS, "-", "-")
		}
	}
	if oldR.TotalWallMS > 0 {
		fmt.Fprintf(w, "total    %12.1f %12.1f %+8.1f%%\n",
			oldR.TotalWallMS, newR.TotalWallMS,
			(newR.TotalWallMS-oldR.TotalWallMS)/oldR.TotalWallMS*100)
	}

	// SMP cells: parallel speedup is the tracked number, higher is better.
	// A cell regresses when its speedup drops by more than smpThreshold
	// percent of the old value. A section present on one side only (the
	// sweep was just added, or just retired) lists every cell as
	// added/removed instead of being skipped silently.
	if len(oldR.SMPCells) > 0 || len(newR.SMPCells) > 0 {
		type cellKey struct{ config, profile string }
		oldCells := make(map[cellKey]bench.SMPCell, len(oldR.SMPCells))
		for _, c := range oldR.SMPCells {
			oldCells[cellKey{c.Config, c.Profile}] = c
		}
		fmt.Fprintf(w, "\n%-8s %-12s %11s %11s %9s\n", "config", "profile", "old speedup", "new speedup", "delta")
		for _, n := range newR.SMPCells {
			o, ok := oldCells[cellKey{n.Config, n.Profile}]
			if !ok {
				fmt.Fprintf(w, "%-8s %-12s %11s %10.2fx %9s  (new cell)\n", n.Config, n.Profile, "-", n.SpeedupX, "-")
				continue
			}
			delete(oldCells, cellKey{n.Config, n.Profile})
			mark := ""
			var drop float64
			if o.SpeedupX > 0 {
				drop = (o.SpeedupX - n.SpeedupX) / o.SpeedupX * 100
				if drop > smpThreshold {
					mark = "  REGRESSION"
					failed = true
				}
			}
			jitCol := ""
			if stormProfile(n.Profile) {
				oldRate, oldOK := hitRate(o)
				newRate, newOK := hitRate(n)
				if oldOK && newOK {
					jitCol = fmt.Sprintf("  jit %.1f%%->%.1f%%", oldRate, newRate)
					if oldRate-newRate > jitThreshold {
						mark = "  JIT-REGRESSION"
						failed = true
					}
				}
			}
			fmt.Fprintf(w, "%-8s %-12s %10.2fx %10.2fx %+8.1f%%%s%s\n",
				n.Config, n.Profile, o.SpeedupX, n.SpeedupX, -drop, jitCol, mark)
		}
		// Cells left in the map appear only in the old report.
		for _, c := range oldR.SMPCells {
			if o, ok := oldCells[cellKey{c.Config, c.Profile}]; ok {
				fmt.Fprintf(w, "%-8s %-12s %10.2fx %11s %9s  (cell removed)\n", o.Config, o.Profile, o.SpeedupX, "-", "-")
			}
		}
	}
	return failed
}

// Command sysregs prints the NEVE register classification: the paper's
// Tables 2 (VNCR_EL2 fields), 3 (VM system registers), 4 (hypervisor
// control registers) and 5 (GIC hypervisor control registers), together
// with each register's deferred-access-page slot.
//
//	sysregs [vncr|vm|hyp|gic|all]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/nevesim/neve/internal/arm"
	"github.com/nevesim/neve/internal/core"
)

func main() {
	flag.Parse()
	cmd := "all"
	if flag.NArg() > 0 {
		cmd = flag.Arg(0)
	}
	switch cmd {
	case "vncr":
		vncr()
	case "vm":
		group(core.ClassVMTrapControl, core.ClassVMExecControl, core.ClassThreadID, core.ClassVMExtra)
	case "hyp":
		group(core.ClassHypRedirect, core.ClassHypRedirectVHE, core.ClassHypTrapOnWrite, core.ClassHypRedirectOrTrap)
	case "gic":
		group(core.ClassGICHyp)
	case "all":
		vncr()
		fmt.Println()
		fmt.Println("Table 3: VM System Registers (rewritten to the deferred access page)")
		group(core.ClassVMTrapControl, core.ClassVMExecControl, core.ClassThreadID, core.ClassVMExtra)
		fmt.Println()
		fmt.Println("Table 4: Hypervisor Control Registers")
		group(core.ClassHypRedirect, core.ClassHypRedirectVHE, core.ClassHypTrapOnWrite, core.ClassHypRedirectOrTrap)
		fmt.Println()
		fmt.Println("Table 5: Hypervisor Control GIC Registers")
		group(core.ClassGICHyp)
		fmt.Println()
		fmt.Println("Debug, PMU and timer registers (Section 6.1, closing paragraph)")
		group(core.ClassDebugPMU, core.ClassTimer)
	default:
		fmt.Fprintln(os.Stderr, "usage: sysregs [vncr|vm|hyp|gic|all]")
		os.Exit(2)
	}
}

// vncr prints Table 2.
func vncr() {
	fmt.Println("Table 2: VNCR_EL2 Register Fields")
	fmt.Println("  bits[52:12]  BADDR: Deferred Access Page Base Address")
	fmt.Println("  bits[11:1]   Reserved")
	fmt.Println("  bit[0]       Enable")
	fmt.Printf("  deferred access page layout uses %d bytes (one 4 KiB page)\n", core.PageBytes())
}

func group(classes ...core.Class) {
	for _, cl := range classes {
		fmt.Printf("%s:\n", cl)
		for _, r := range core.Rules() {
			if r.Class != cl {
				continue
			}
			slot := "-"
			if r.VNCROffset >= 0 {
				slot = fmt.Sprintf("+%#03x", r.VNCROffset)
			}
			redirect := ""
			if r.Redirect != arm.RegInvalid {
				redirect = " -> " + r.Redirect.String()
			}
			fmt.Printf("  %-18s %-16s page %-6s%s\n", r.Reg, r.Treatment, slot, redirect)
		}
	}
}

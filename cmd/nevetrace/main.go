// Command nevetrace prints the trap-by-trap trace of one microbenchmark
// operation: the exit multiplication problem made visible (Section 5's
// "each trap from the nested VM results in a multitude of additional traps
// from the guest hypervisor to the host hypervisor").
//
// -config accepts any platform registry name ("v8.3", "neve-vhe",
// "x86-nested", ...) or an ad-hoc axis list ("nesting=2,neve,gicv2").
//
//	nevetrace [-config <name|axis=value,...>] [hypercall|deviceio]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/nevesim/neve/internal/platform"
)

func main() {
	config := flag.String("config", "v8.3", "platform registry name or axis=value list")
	flag.Parse()
	op := "hypercall"
	if flag.NArg() > 0 {
		op = flag.Arg(0)
	}

	spec, err := platform.Parse(*config)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nevetrace:", err)
		os.Exit(2)
	}
	spec.RecordTrace = true
	p, err := platform.Build(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nevetrace:", err)
		os.Exit(2)
	}

	p.RunGuest(0, func(g platform.Guest) {
		run := func() {
			switch op {
			case "hypercall":
				g.Hypercall()
			case "deviceio":
				g.DeviceRead(0)
			default:
				fmt.Fprintf(os.Stderr, "unknown operation %q\n", op)
				os.Exit(2)
			}
		}
		run() // warm up shadow structures
		p.Trace().Reset()
		before := g.Cycles()
		run()
		cycles := g.Cycles() - before
		fmt.Printf("one %s on %s: %d cycles, %d traps to the host hypervisor\n\n",
			op, spec, cycles, p.Trace().Total())
	})

	fmt.Println("trap-by-trap (level 2 = nested VM, level 1 = guest hypervisor):")
	for i, ev := range p.Trace().Events() {
		fmt.Printf("  %3d  L%d  %-24s @%d\n", i+1, ev.FromLevel, ev.Detail(), ev.Cycle)
	}
	fmt.Println()
	fmt.Print(p.Trace().Summary())
	lv := p.LevelCycles(0)
	fmt.Printf("\ncycles by level (whole run):")
	for l, c := range lv {
		if c != 0 || l < 2 {
			fmt.Printf(" L%d %d", l, c)
		}
	}
	fmt.Println()
}

// Command nevetrace prints the trap-by-trap trace of one microbenchmark
// operation: the exit multiplication problem made visible (Section 5's
// "each trap from the nested VM results in a multitude of additional traps
// from the guest hypervisor to the host hypervisor").
//
//	nevetrace [-config v8.3|v8.3-vhe|neve|neve-vhe] [hypercall|deviceio]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/nevesim/neve/internal/kvm"
)

func main() {
	config := flag.String("config", "v8.3", "stack configuration: v8.3, v8.3-vhe, neve, neve-vhe")
	flag.Parse()
	op := "hypercall"
	if flag.NArg() > 0 {
		op = flag.Arg(0)
	}

	opts := kvm.StackOptions{RecordTrace: true}
	switch *config {
	case "v8.3":
	case "v8.3-vhe":
		opts.GuestVHE = true
	case "neve":
		opts.GuestNEVE = true
	case "neve-vhe":
		opts.GuestVHE = true
		opts.GuestNEVE = true
	default:
		fmt.Fprintf(os.Stderr, "unknown config %q\n", *config)
		os.Exit(2)
	}

	s := kvm.NewNestedStack(opts)
	s.RunGuest(0, func(g *kvm.GuestCtx) {
		run := func() {
			switch op {
			case "hypercall":
				g.Hypercall()
			case "deviceio":
				g.DeviceRead(0)
			default:
				fmt.Fprintf(os.Stderr, "unknown operation %q\n", op)
				os.Exit(2)
			}
		}
		run() // warm up shadow structures
		s.M.Trace.Reset()
		before := g.CPU.Cycles()
		run()
		cycles := g.CPU.Cycles() - before
		fmt.Printf("one nested %s on %s: %d cycles, %d traps to the host hypervisor\n\n",
			op, *config, cycles, s.M.Trace.Total())
	})

	fmt.Println("trap-by-trap (level 2 = nested VM, level 1 = guest hypervisor):")
	for i, ev := range s.M.Trace.Events() {
		fmt.Printf("  %3d  L%d  %-24s @%d\n", i+1, ev.FromLevel, ev.Detail, ev.Cycle)
	}
	fmt.Println()
	fmt.Print(s.M.Trace.Summary())
	lv := s.M.CPUs[0].LevelCycles()
	fmt.Printf("\ncycles by level (whole run): host %d, guest hypervisor %d, nested VM %d\n",
		lv[0], lv[1], lv[2])
}

// Command nevesim regenerates the paper's evaluation artifacts on the
// simulated hardware:
//
//	nevesim table1     Table 1: microbenchmark cycles, ARMv8.3 vs x86
//	nevesim table6     Table 6: microbenchmark cycles with NEVE
//	nevesim table7     Table 7: traps to the host hypervisor
//	nevesim table8     Table 8: the application benchmark descriptions
//	nevesim fig2       Figure 2: application benchmark overhead
//	nevesim events     Figure 2 event-count analysis (the x86 anomaly)
//	nevesim trapcost   Section 5: trap-cost interchangeability validation
//	nevesim ablation   NEVE mechanism ablation (Section 6 attribution)
//	nevesim optvhe     Section 7.1: optimized VHE guest hypervisor
//	nevesim recursive  Section 6.2: an L3 hypercall, ARMv8.3 vs NEVE
//	nevesim bench      time the suites; -json writes BENCH_<date>.json,
//	                   -coldboot disables the warm-boot checkpoint cache,
//	                   -cpuprofile/-memprofile capture pprof profiles
//	nevesim smp        SMP scale-out sweep (epoch-lockstep engine):
//	                   sequential vs parallel vCPU execution per cell with
//	                   the byte-equivalence verdict; -json writes
//	                   BENCH_<date>-smp[-adaptive].json, -cpus N restricts
//	                   the sweep to configurations of that machine width,
//	                   -profile to one workload, -budget N fixes the epoch
//	                   budget (0 = adaptive auto-tuning)
//	nevesim run        microbenchmark one configuration: -config <name|axes>;
//	                   -faults <plan> injects seeded faults, -max-traps/
//	                   -max-steps attach watchdog budgets (non-zero exit
//	                   with a SimError diagnostic on livelock)
//	nevesim fleet      run the full sweep as a reconciling fleet of worker
//	                   processes (internal/fleet): -workers N, -store DIR
//	                   shares a durable checkpoint store, -configs a,b
//	                   restricts the sweep, -retries/-max-traps/-max-steps
//	                   shape recovery, -kill-after N injects a worker crash,
//	                   -check verifies the merged report byte-identical to a
//	                   single-process run, -json emits the sweep as JSON
//	nevesim serve      speak the fleet worker protocol on stdin/stdout
//	                   (spawned by `nevesim fleet`; not for interactive use)
//	nevesim all        everything above except bench, run, fleet and serve
//
// Experiment cells run across a worker pool (every cell gets a private
// simulated machine — warm-restored from a boot checkpoint by default —
// and results are order- and value-identical to a sequential cold run);
// -parallel N overrides the GOMAXPROCS default. -jit=off disables the
// trace-JIT layer (internal/jit) for every ARM cell; measured outputs are
// byte-identical either way, only wall time moves.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"github.com/nevesim/neve/internal/arm"
	"github.com/nevesim/neve/internal/bench"
	"github.com/nevesim/neve/internal/fault"
	"github.com/nevesim/neve/internal/fleet"
	"github.com/nevesim/neve/internal/mem"
	"github.com/nevesim/neve/internal/platform"
	"github.com/nevesim/neve/internal/trace"
	"github.com/nevesim/neve/internal/workload"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: nevesim [-parallel N] [table1|table6|table7|table8|fig2|events|trapcost|ablation|optvhe|recursive|bench|smp|run|fleet|serve|all]")
	os.Exit(2)
}

func main() {
	flag.Usage = usage
	parallel := flag.Int("parallel", 0, "worker count for experiment cells (0 = GOMAXPROCS)")
	jitMode := flag.String("jit", "on", "trace-JIT layer for experiment cells: on or off")
	flag.Parse()
	if *jitMode != "on" && *jitMode != "off" {
		fmt.Fprintf(os.Stderr, "nevesim: -jit=%s is not on or off\n", *jitMode)
		os.Exit(2)
	}
	h := bench.Harness{Parallelism: *parallel, JITOff: *jitMode == "off"}
	cmd := "all"
	if flag.NArg() > 0 {
		cmd = flag.Arg(0)
	}
	switch cmd {
	case "table1":
		fmt.Print(bench.FormatTable1(h.RunAllMicro()))
	case "table6":
		fmt.Print(bench.FormatTable6(h.RunAllMicro()))
	case "table7":
		fmt.Print(bench.FormatTable7(h.RunAllMicro()))
	case "table8":
		fmt.Print(bench.FormatTable8())
	case "fig2":
		fmt.Print(bench.FormatFigure2(h.RunFigure2()))
	case "events":
		fmt.Print(bench.FormatFigure2Events(h.RunFigure2Events(
			[]bench.ConfigID{bench.ARMNested, bench.NEVENested, bench.X86Nested})))
	case "trapcost":
		trapCost()
	case "ablation":
		fmt.Print(bench.FormatAblation(h.RunAblation(false)))
	case "optvhe":
		fmt.Print(bench.FormatOptimizedVHE(bench.RunOptimizedVHE()))
	case "recursive":
		recursive()
	case "bench":
		benchReport(h, flag.Args()[1:])
	case "smp":
		smpReport(h, flag.Args()[1:])
	case "run":
		runConfig(flag.Args()[1:])
	case "fleet":
		fleetSweep(h, flag.Args()[1:])
	case "serve":
		if err := fleet.Serve(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "nevesim serve:", err)
			os.Exit(1)
		}
	case "all":
		micro := h.RunAllMicro()
		fmt.Print(bench.FormatTable1(micro))
		fmt.Println()
		fmt.Print(bench.FormatTable6(micro))
		fmt.Println()
		fmt.Print(bench.FormatTable7(micro))
		fmt.Println()
		fmt.Print(bench.FormatTable8())
		fmt.Println()
		fmt.Print(bench.FormatFigure2(h.RunFigure2()))
		fmt.Println()
		fmt.Print(bench.FormatFigure2Events(h.RunFigure2Events(
			[]bench.ConfigID{bench.ARMNested, bench.NEVENested, bench.X86Nested})))
		fmt.Println()
		trapCost()
		fmt.Println()
		fmt.Print(bench.FormatAblation(h.RunAblation(false)))
		fmt.Println()
		fmt.Print(bench.FormatOptimizedVHE(bench.RunOptimizedVHE()))
		fmt.Println()
		recursive()
	default:
		usage()
	}
}

// benchReport times the suites; with -json it writes BENCH_<date>.json in
// the current directory for cross-PR performance tracking, and with
// -cpuprofile/-memprofile it captures pprof profiles of the run (the
// profiling toolchain behind `make profile`; see EXPERIMENTS.md).
// -coldboot disables the warm-boot checkpoint cache so every cell builds
// its platform from scratch — the baseline the warm numbers are compared
// against (outputs are byte-identical either way; only wall time moves).
func benchReport(h bench.Harness, args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "write BENCH_<date>.json")
	coldBoot := fs.Bool("coldboot", false, "disable the warm-boot checkpoint cache (cold baseline)")
	cpuProf := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProf := fs.String("memprofile", "", "write a heap profile to this file")
	fs.Parse(args)
	h.ColdBoot = *coldBoot
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nevesim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "nevesim:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	r := h.RunBenchReport()
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nevesim:", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // report live objects, not transient garbage
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "nevesim:", err)
			os.Exit(1)
		}
	}
	fmt.Print(bench.FormatReport(r))
	if *jsonOut {
		name := r.Filename()
		if err := os.WriteFile(name, r.JSON(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "nevesim:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", name)
	}
}

// smpReport runs the SMP scale-out sweep (internal/bench RunSMPSweep):
// every cell sequential then parallel on the epoch-lockstep engine, with
// the byte-equivalence verdict per cell. -cpus restricts the sweep to
// registry configurations of that machine width; -profile to one workload
// profile. -budget N fixes the epoch budget (the sensitivity axis); 0,
// the default, selects adaptive auto-tuning. -json writes
// BENCH_<date>-smp[-adaptive].json for cross-PR tracking via benchdiff's
// -smp-threshold. Exits non-zero if any cell diverges — the sweep doubles
// as a determinism gate, not just a benchmark.
func smpReport(h bench.Harness, args []string) {
	fs := flag.NewFlagSet("smp", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "write BENCH_<date>-smp[-adaptive].json")
	cpus := fs.Int("cpus", 0, "restrict the sweep to configurations with this vCPU count (0 = all)")
	budget := fs.Uint64("budget", 0, "epoch budget in guest cycles (0 = adaptive auto-tuning)")
	profile := fs.String("profile", "", "restrict the sweep to this workload profile (default all)")
	fs.Parse(args)
	opts := bench.SMPSweepOptions{Budget: *budget, Adaptive: *budget == 0}
	if *profile != "" {
		if _, ok := workload.SMPProfileByName(*profile); !ok {
			fmt.Fprintf(os.Stderr, "nevesim smp: unknown profile %q (have:", *profile)
			for _, p := range workload.SMPProfiles() {
				fmt.Fprintf(os.Stderr, " %s", p.Name)
			}
			fmt.Fprintln(os.Stderr, ")")
			os.Exit(2)
		}
		opts.Profiles = []string{*profile}
	}
	specs := bench.SMPSweepSpecs()
	if *cpus != 0 {
		var kept []string
		for _, name := range specs {
			if platform.MustLookup(name).CPUs == *cpus {
				kept = append(kept, name)
			}
		}
		if len(kept) == 0 {
			fmt.Fprintf(os.Stderr, "nevesim smp: no sweep configuration has %d vCPUs (widths:", *cpus)
			for _, name := range specs {
				fmt.Fprintf(os.Stderr, " %d", platform.MustLookup(name).CPUs)
			}
			fmt.Fprintln(os.Stderr, ")")
			os.Exit(2)
		}
		specs = kept
	}
	r := h.RunSMPReportOpts(specs, opts)
	fmt.Print(bench.FormatSMPReport(r))
	diverged := false
	for _, c := range r.SMPCells {
		if !c.Identical {
			fmt.Fprintf(os.Stderr, "nevesim smp: %s/%s parallel run diverged from sequential\n", c.Config, c.Profile)
			diverged = true
		}
	}
	if *jsonOut {
		name := r.Filename()
		if err := os.WriteFile(name, r.JSON(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "nevesim:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", name)
	}
	if diverged {
		os.Exit(1)
	}
}

// fleetSweep runs the full sweep as a reconciling fleet: worker
// processes (`nevesim serve` re-invocations of this binary) are fed
// cells over stdin/stdout, crashes are recovered by respawn + capped
// exponential backoff retries, and the merged result is byte-identical
// to a single-process harness run — which -check verifies on the spot.
// -kill-worker/-kill-after inject a deterministic worker crash
// mid-sweep (the CI smoke test's chaos hook). Exits non-zero only if
// the fleet cannot start, -check fails, or cells degraded (every retry
// died with its worker).
func fleetSweep(h bench.Harness, args []string) {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	workers := fs.Int("workers", 2, "worker process count")
	store := fs.String("store", "", "durable checkpoint store directory shared by all workers")
	configsF := fs.String("configs", "", "comma-separated registry spec names (default: the full sweep)")
	maxTraps := fs.Uint64("max-traps", 0, "per-cell trap budget (0 = unlimited)")
	maxSteps := fs.Uint64("max-steps", 0, "per-cell guest-instruction budget (0 = unlimited)")
	retries := fs.Int("retries", 0, "per-cell retry budget for cells lost to worker deaths (0 = default)")
	killWorker := fs.Int("kill-worker", 0, "worker slot armed by -kill-after")
	killAfter := fs.Int("kill-after", 0, "crash injection: the armed worker dies receiving its Nth cell (0 = off)")
	check := fs.Bool("check", false, "re-run the sweep in-process and verify the merged report is byte-identical")
	jsonOut := fs.Bool("json", false, "emit the sweep result as JSON instead of tables")
	fs.Parse(args)

	var configs []bench.ConfigID
	if *configsF != "" {
		for _, name := range strings.Split(*configsF, ",") {
			c, ok := bench.ConfigByName(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "nevesim fleet: unknown config %q (have:", name)
				for _, c := range bench.AllConfigs() {
					fmt.Fprintf(os.Stderr, " %s", c.SpecName())
				}
				fmt.Fprintln(os.Stderr, ")")
				os.Exit(2)
			}
			configs = append(configs, c)
		}
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "nevesim fleet:", err)
		os.Exit(1)
	}
	opts := fleet.Options{
		Workers:      *workers,
		WorkerCmd:    []string{exe, "serve"},
		WorkerStderr: os.Stderr,
		Configs:      configs,
		JITOff:       h.JITOff,
		MaxTraps:     *maxTraps,
		MaxSteps:     *maxSteps,
		StoreDir:     *store,
		MaxRetries:   *retries,
		CrashWorker:  *killWorker,
		CrashAfter:   *killAfter,
		Log:          os.Stderr,
	}
	res, err := fleet.Run(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nevesim fleet:", err)
		os.Exit(1)
	}
	if *jsonOut {
		b, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "nevesim fleet:", err)
			os.Exit(1)
		}
		os.Stdout.Write(append(b, '\n'))
	} else {
		fmt.Print(res.Tables())
		fmt.Print(fleet.FormatStats(res.Stats))
	}
	failed := false
	if res.Stats.Degraded > 0 {
		fmt.Fprintf(os.Stderr, "nevesim fleet: %d cells degraded (see the report's degraded list)\n", res.Stats.Degraded)
		failed = true
	}
	if *check {
		if err := res.Check(opts.Reference()); err != nil {
			fmt.Fprintln(os.Stderr, "nevesim fleet:", err)
			failed = true
		} else {
			fmt.Fprintln(os.Stderr, "nevesim fleet: check ok — merged report byte-identical to single-process harness")
		}
	}
	if failed {
		os.Exit(1)
	}
}

// runConfig microbenchmarks one platform spec — a registry name or an
// ad-hoc axis list — including combinations outside the paper's matrix
// (e.g. -config gicv2,hostvhe,nesting=2,neve). -faults attaches a seeded
// fault-injection plan, and -max-traps/-max-steps attach watchdog budgets:
// a run that trap-storms or livelocks exits non-zero with a SimError
// diagnostic instead of hanging (see EXPERIMENTS.md, "Fault injection &
// fuzzing").
func runConfig(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	config := fs.String("config", "", "registry name or axis=value list (see -list)")
	list := fs.Bool("list", false, "list the registry spec names and exit")
	faults := fs.String("faults", "", "fault-injection plan, e.g. seed=42,every=100,count=5,kinds=irq+vncr")
	maxTraps := fs.Uint64("max-traps", 0, "abort after this many traps (0 = unlimited)")
	maxSteps := fs.Uint64("max-steps", 0, "abort after this many guest instructions (0 = unlimited)")
	fs.Parse(args)
	if *list || *config == "" {
		fmt.Println("registry specs:")
		for _, name := range platform.Names() {
			spec := platform.MustLookup(name)
			fmt.Printf("  %-22s %s\n", name, spec.Axes())
		}
		fmt.Println("or an axis list, e.g. -config arch=arm,nesting=2,neve,gicv2,hostvhe")
		if !*list {
			os.Exit(2)
		}
		return
	}
	spec, err := platform.Parse(*config)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nevesim run:", err)
		os.Exit(1)
	}
	spec.Faults, err = fault.ParsePlan(*faults)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nevesim run:", err)
		os.Exit(1)
	}
	spec.MaxTraps = *maxTraps
	spec.MaxSteps = *maxSteps
	if err := spec.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "nevesim run:", err)
		os.Exit(1)
	}
	if spec.Name != "" {
		fmt.Printf("config %s (%s)\n", spec.Name, spec.Axes())
	} else {
		fmt.Printf("config %s\n", spec.Axes())
	}
	if spec.Faults.Active() {
		fmt.Printf("faults %s\n", spec.Faults)
	}
	for _, op := range bench.MicroOps() {
		p, err := platform.Build(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nevesim run:", err)
			os.Exit(1)
		}
		var cycles, traps uint64
		runErr := p.Protect(func() { cycles, traps = bench.RunMicroOn(p, op) })
		if runErr != nil {
			var se *fault.SimError
			if errors.As(runErr, &se) {
				fmt.Fprintf(os.Stderr, "nevesim run: %s died:\n%s", op, se.Diagnostic())
			} else {
				fmt.Fprintln(os.Stderr, "nevesim run:", runErr)
			}
			os.Exit(1)
		}
		fmt.Printf("  %-12s %12s cycles %6d traps", op, fmtN(cycles), traps)
		if lv := p.LevelCycles(0); len(lv) > 0 {
			fmt.Printf("   per-level")
			for l, c := range lv {
				if c != 0 {
					fmt.Printf(" L%d:%d", l, c)
				}
			}
		}
		fmt.Println()
		if inj := p.Injector(); inj != nil {
			for _, line := range inj.Log() {
				fmt.Printf("      injected %s\n", line)
			}
		}
	}
}

func fmtN(n uint64) string {
	if n < 1000 {
		return fmt.Sprintf("%d", n)
	}
	return fmtN(n/1000) + fmt.Sprintf(",%03d", n%1000)
}

// recursive measures an L3 hypercall (Section 6.2).
func recursive() {
	fmt.Println("Recursive virtualization (Section 6.2): one hypercall from an L3 VM")
	for _, name := range []string{"recursive-v8.3", "recursive-neve"} {
		spec := platform.MustLookup(name)
		label := "ARMv8.3"
		if spec.NEVE {
			label = "NEVE"
		}
		p := platform.MustBuild(spec)
		var cycles uint64
		p.RunGuest(0, func(g platform.Guest) {
			g.Hypercall()
			p.Trace().Reset()
			before := g.Cycles()
			g.Hypercall()
			cycles = g.Cycles() - before
		})
		fmt.Printf("  %-8s %12d cycles  %6d traps\n", label, cycles, p.Trace().Total())
	}
}

type nullHandler struct{}

func (nullHandler) HandleTrap(c *arm.CPU, e *arm.Exception) uint64 { return 0 }

// trapCost reproduces the Section 5 validation: the trap cost of different
// system register access instructions compared to hvc (paper: 68-76 cycles
// in, 65 out, spread below 10%).
func trapCost() {
	fmt.Println("Trap-cost validation (Section 5): EL1->EL2 round trips")
	probes := []struct {
		name string
		fire func(c *arm.CPU)
	}{
		{"hvc #0", func(c *arm.CPU) { c.HVC(0) }},
		{"msr VTTBR_EL2", func(c *arm.CPU) { c.MSR(arm.VTTBR_EL2, 1) }},
		{"mrs ESR_EL2", func(c *arm.CPU) { _ = c.MRS(arm.ESR_EL2) }},
		{"msr HCR_EL2", func(c *arm.CPU) { c.MSR(arm.HCR_EL2, 0) }},
		{"msr SCTLR_EL1 (NV1)", func(c *arm.CPU) { c.MSR(arm.SCTLR_EL1, 0) }},
		{"eret", func(c *arm.CPU) { c.ERET() }},
	}
	var min, max uint64
	for _, p := range probes {
		c := arm.NewCPU(0, mem.New(0), arm.FeaturesV83())
		c.Vector = nullHandler{}
		c.Trace = trace.NewCollector(false)
		c.SetReg(arm.HCR_EL2, arm.HCRNV|arm.HCRNV1)
		var cost uint64
		c.RunGuest(1, func() {
			before := c.Cycles()
			p.fire(c)
			cost = c.Cycles() - before
		})
		fmt.Printf("  %-22s %4d cycles (enter %d + return %d)\n",
			p.name, cost, c.Cost.TrapEnter, c.Cost.TrapReturn)
		if min == 0 || cost < min {
			min = cost
		}
		if cost > max {
			max = cost
		}
	}
	spread := float64(max-min) / float64(max) * 100
	fmt.Printf("  spread: %.1f%% (paper requires < 10%% for paravirtual interchangeability)\n", spread)
}
